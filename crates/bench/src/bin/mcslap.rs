//! `mcslap`: a memslap-flag-compatible load generator that drives the
//! cache through the **binary protocol** layer (encode → decode →
//! dispatch for every operation), end to end.
//!
//! ```console
//! $ cargo run --release -p bench --bin mcslap -- \
//!       --concurrency 4 --execute-number 10000 --binary --branch ip-nolock
//! ```
//!
//! With `--tcp HOST:PORT` the same workloads run over real sockets
//! against a running `mcached` instead of an in-process cache — every
//! GET hit is verified against the deterministic workload oracle, and
//! the run ends by asserting the server saw zero frame errors:
//!
//! ```console
//! $ cargo run --release -p bench --bin mcslap -- \
//!       --tcp 127.0.0.1:11311 --connections 4 --multiget 8
//! ```
//!
//! `--unix PATH` and `--udp HOST:PORT` run the same oracle-checked
//! workload over the other transports; socket modes report p50/p95/p99
//! roundtrip latency. Two connection-scale scenarios ride on the stream
//! transports: `--churn N` (N workers × `--execute-number` full
//! connect → set → get → quit lifecycles) and `--fanin N` (N held
//! connections, a thin get stream rotating across them, and a final
//! per-connection liveness sweep).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use bench::wire::{UdpClient, WireConn};
use mcache::proto::binary::{self, Opcode, Request, Status};
use mcache::{Branch, McCache, McConfig, Stage, StoreMode, StoreOp};
use tm::{Algorithm, ContentionManager};
use workload::{Op, OpMix, Workload};

struct Args {
    concurrency: usize,
    execute_number: usize,
    binary: bool,
    branch: Branch,
    value_size: usize,
    keys: usize,
    /// Run over TCP against this `HOST:PORT` instead of in-process.
    tcp: Option<String>,
    /// Run over UDP (memcached frame headers) against this `HOST:PORT`.
    udp: Option<String>,
    /// Run over a Unix-domain socket at this path.
    unix: Option<std::path::PathBuf>,
    /// Connection-churn storm: each worker runs `--execute-number`
    /// connect → set → get → quit cycles against the `--tcp`/`--unix`
    /// target. 0 = off.
    churn: usize,
    /// Connection fan-in: hold this many mostly-idle connections open
    /// while a thin stream of gets rotates across them, then prove every
    /// one still answers. 0 = off.
    fanin: usize,
    /// Client connections in `--tcp` mode (each with its own thread and
    /// workload stream); 0 = `--concurrency`.
    connections: usize,
    /// Percent of operations that are GETs (the rest are SETs).
    read_ratio: usize,
    /// Batch consecutive GETs n-at-a-time through the multiget path
    /// (ASCII-style `get k1 .. kn` via the API, pipelined quiet GETKQ
    /// frames under `--binary`). 1 = no batching.
    multiget: usize,
    /// Batch consecutive SETs n-at-a-time through the single-transaction
    /// store path (`store_batch` via the API, pipelined quiet SETQ frames
    /// under `--binary`). 1 = no batching.
    setq_pipeline: usize,
    /// Upper bound for uniform per-key value sizes; 0 = fixed
    /// `--value-size` for every key.
    value_size_max: usize,
    /// Per-worker slab magazine capacity (transactional-item branches
    /// only); 0 = off, the 3-transaction store.
    magazine: usize,
    /// Warm-restart mode: load the keyspace with the redo log attached,
    /// shut down (sealing the log), restart on the same directory, and
    /// verify + time the recovery.
    restart: bool,
    /// Redo-log directory for `--restart`; a fresh temp dir when unset.
    dur_path: Option<std::path::PathBuf>,
    /// Fsync policy for `--restart`.
    dur_fsync: mcache::DurFsync,
    /// Zipfian key-popularity exponent in `[0, 1)`; 0 = uniform.
    zipf: f64,
    /// Run the adaptive controller (`--adapt on|off`).
    adapt: bool,
    /// Controller epoch in milliseconds.
    adapt_epoch_ms: u64,
    /// Hot-key privatization slots; 0 = off.
    hot_slots: usize,
    /// Run the three-phase schedule (read-mostly → write-storm →
    /// hot-key zipfian) instead of one homogeneous stream, reporting
    /// per-phase throughput and the configuration the controller landed
    /// on after each phase.
    phase_shift: bool,
    /// Pin the STM algorithm (`--algorithm eager|lazy|norec`); None =
    /// the cache default. The static arms of the adaptive-vs-static
    /// comparison pin this with `--adapt off`.
    algorithm: Option<Algorithm>,
    /// Pin the contention manager (`--cm none|gcc-default|backoff:N|
    /// serialize-after:N|hourglass:N`); None = the branch default.
    cm: Option<ContentionManager>,
}

fn parse_cm(name: &str) -> Option<ContentionManager> {
    if name == "none" {
        return Some(ContentionManager::None);
    }
    if name == "gcc-default" {
        return Some(ContentionManager::GCC_DEFAULT);
    }
    if let Some(n) = name.strip_prefix("serialize-after:") {
        return Some(ContentionManager::SerializeAfter(n.parse().ok()?));
    }
    if let Some(n) = name.strip_prefix("backoff:") {
        return Some(ContentionManager::Backoff { max_shift: n.parse().ok()? });
    }
    if let Some(n) = name.strip_prefix("hourglass:") {
        return Some(ContentionManager::Hourglass(n.parse().ok()?));
    }
    None
}

fn parse_branch(name: &str) -> Option<Branch> {
    Some(match name {
        "baseline" => Branch::Baseline,
        "semaphore" => Branch::Semaphore,
        "ip" => Branch::Ip(Stage::Plain),
        "it" => Branch::It(Stage::Plain),
        "ip-max" => Branch::Ip(Stage::Max),
        "it-max" => Branch::It(Stage::Max),
        "ip-lib" => Branch::Ip(Stage::Lib),
        "it-lib" => Branch::It(Stage::Lib),
        "ip-oncommit" => Branch::Ip(Stage::OnCommit),
        "it-oncommit" => Branch::It(Stage::OnCommit),
        "ip-nolock" => Branch::IpNoLock,
        "it-nolock" => Branch::ItNoLock,
        _ => return None,
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        concurrency: 4,
        execute_number: 10_000,
        binary: false,
        branch: Branch::IpNoLock,
        value_size: 256,
        keys: 2000,
        tcp: None,
        udp: None,
        unix: None,
        churn: 0,
        fanin: 0,
        connections: 0,
        read_ratio: 90,
        multiget: 1,
        setq_pipeline: 1,
        value_size_max: 0,
        magazine: 0,
        restart: false,
        dur_path: None,
        dur_fsync: mcache::DurFsync::EveryN(32),
        zipf: 0.0,
        adapt: false,
        adapt_epoch_ms: 50,
        hot_slots: 0,
        phase_shift: false,
        algorithm: None,
        cm: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| {
            it.next().and_then(|v| v.parse::<usize>().ok())
        };
        match flag.as_str() {
            "--concurrency" | "-c" => {
                if let Some(v) = num(&mut it) {
                    args.concurrency = v.max(1);
                }
            }
            "--execute-number" | "-x" => {
                if let Some(v) = num(&mut it) {
                    args.execute_number = v;
                }
            }
            "--value-size" => {
                if let Some(v) = num(&mut it) {
                    args.value_size = v.max(1);
                }
            }
            "--keys" => {
                if let Some(v) = num(&mut it) {
                    args.keys = v.max(1);
                }
            }
            "--read-ratio" => {
                if let Some(v) = num(&mut it) {
                    args.read_ratio = v.min(100);
                }
            }
            // memslap has no such flag, but every setpath arm is
            // write-shaped; --write-ratio 70 == --read-ratio 30.
            "--write-ratio" => {
                if let Some(v) = num(&mut it) {
                    args.read_ratio = 100 - v.min(100);
                }
            }
            "--value-size-max" => {
                if let Some(v) = num(&mut it) {
                    args.value_size_max = v;
                }
            }
            "--setq-pipeline" => {
                if let Some(v) = num(&mut it) {
                    args.setq_pipeline = v.max(1);
                }
            }
            "--magazine" => {
                if let Some(v) = num(&mut it) {
                    args.magazine = v;
                }
            }
            "--multiget" => {
                if let Some(v) = num(&mut it) {
                    args.multiget = v.max(1);
                }
            }
            "--binary" => args.binary = true,
            "--restart" => args.restart = true,
            "--phase-shift" => args.phase_shift = true,
            "--zipf" => {
                match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(t) if (0.0..1.0).contains(&t) => args.zipf = t,
                    _ => {
                        eprintln!("--zipf takes a theta in [0, 1)");
                        std::process::exit(2);
                    }
                }
            }
            "--adapt" => {
                match it.next().as_deref() {
                    Some("on") => args.adapt = true,
                    Some("off") => args.adapt = false,
                    _ => {
                        eprintln!("--adapt takes on | off");
                        std::process::exit(2);
                    }
                }
            }
            "--adapt-epoch-ms" => {
                if let Some(v) = num(&mut it) {
                    args.adapt_epoch_ms = v.max(1) as u64;
                }
            }
            "--hot-slots" => {
                if let Some(v) = num(&mut it) {
                    args.hot_slots = v;
                }
            }
            "--dur-path" => {
                if let Some(p) = it.next() {
                    args.dur_path = Some(std::path::PathBuf::from(p));
                } else {
                    eprintln!("--dur-path needs a directory");
                    std::process::exit(2);
                }
            }
            "--dur-fsync" => {
                if let Some(f) = it.next().as_deref().and_then(mcache::DurFsync::parse) {
                    args.dur_fsync = f;
                } else {
                    eprintln!("--dur-fsync takes always | every:N | off");
                    std::process::exit(2);
                }
            }
            "--tcp" => {
                if let Some(a) = it.next() {
                    args.tcp = Some(a);
                } else {
                    eprintln!("--tcp needs HOST:PORT");
                    std::process::exit(2);
                }
            }
            "--udp" => {
                if let Some(a) = it.next() {
                    args.udp = Some(a);
                } else {
                    eprintln!("--udp needs HOST:PORT");
                    std::process::exit(2);
                }
            }
            "--unix" => {
                if let Some(p) = it.next() {
                    args.unix = Some(std::path::PathBuf::from(p));
                } else {
                    eprintln!("--unix needs a socket path");
                    std::process::exit(2);
                }
            }
            "--churn" => {
                if let Some(v) = num(&mut it) {
                    args.churn = v.max(1);
                }
            }
            "--fanin" => {
                if let Some(v) = num(&mut it) {
                    args.fanin = v.max(1);
                }
            }
            "--connections" => {
                if let Some(v) = num(&mut it) {
                    args.connections = v.max(1);
                }
            }
            "--algorithm" => {
                args.algorithm = match it.next().as_deref() {
                    Some("eager") => Some(Algorithm::Eager),
                    Some("lazy") => Some(Algorithm::Lazy),
                    Some("norec") => Some(Algorithm::Norec),
                    _ => {
                        eprintln!("--algorithm takes eager | lazy | norec");
                        std::process::exit(2);
                    }
                };
            }
            "--cm" => {
                if let Some(cm) = it.next().as_deref().and_then(parse_cm) {
                    args.cm = Some(cm);
                } else {
                    eprintln!(
                        "--cm takes none | gcc-default | serialize-after:N | \
                         backoff:N | hourglass:N"
                    );
                    std::process::exit(2);
                }
            }
            "--branch" => {
                if let Some(b) = it.next().as_deref().and_then(parse_branch) {
                    args.branch = b;
                } else {
                    eprintln!("unknown branch; see examples/cache_server.rs for names");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if args.restart {
        run_restart(&args);
        return;
    }
    if args.phase_shift {
        run_phase_shift(&args);
        return;
    }
    if let Some(addr) = args.udp.clone() {
        run_udp(&args, &addr);
        return;
    }
    if let Some(target) = StreamTarget::from_args(&args) {
        if args.churn > 0 {
            run_churn(&args, &target);
        } else if args.fanin > 0 {
            run_fanin(&args, &target);
        } else {
            run_stream(&args, &target);
        }
        return;
    }
    if args.churn > 0 || args.fanin > 0 {
        eprintln!("--churn/--fanin need a --tcp or --unix target");
        std::process::exit(2);
    }
    let wl = Arc::new(
        Workload::builder()
            .concurrency(args.concurrency)
            .execute_number(args.execute_number)
            .key_count(args.keys)
            .value_size_range(
                args.value_size,
                args.value_size_max.max(args.value_size),
            )
            .binary(args.binary)
            .zipf(args.zipf)
            .mix(OpMix {
                get: args.read_ratio as u32,
                set: 100 - args.read_ratio as u32,
                delete: 0,
                incr: 0,
            })
            .build(),
    );
    let handle = McCache::start(McConfig {
        branch: args.branch,
        workers: args.concurrency,
        magazine: args.magazine,
        adapt: args.adapt,
        adapt_epoch_ms: args.adapt_epoch_ms,
        hot_slots: args.hot_slots,
        algorithm: args.algorithm.unwrap_or_default(),
        contention: args.cm,
        ..Default::default()
    });
    let cache = handle.cache().clone();
    for i in 0..wl.key_count() {
        cache.set(0, wl.key(i), &wl.value(i), 0, 0);
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..args.concurrency {
            let cache = cache.clone();
            let wl = wl.clone();
            let binary = args.binary;
            let multiget = args.multiget;
            let setq_pipeline = args.setq_pipeline;
            s.spawn(move || {
                // --multiget batching: consecutive GETs accumulate here and
                // flush n-at-a-time through the single-transaction multiget
                // path; any interleaved write flushes the partial batch
                // first, preserving per-thread order.
                let mut batch: Vec<usize> = Vec::new();
                // --setq-pipeline batching: the write twin — consecutive
                // SETs flush n-at-a-time through the single-transaction
                // store path (quiet SETQ frames on the wire under
                // --binary, `store_batch` through the API).
                let mut set_batch: Vec<usize> = Vec::new();
                let flush_sets = |set_batch: &mut Vec<usize>| {
                    if set_batch.is_empty() {
                        return;
                    }
                    if binary {
                        // Full wire path: encode and decode every quiet
                        // SETQ frame, then dispatch the run as one batch;
                        // successes are silent by protocol.
                        let decoded: Vec<Request> = set_batch
                            .iter()
                            .map(|&k| {
                                let req = Request {
                                    opcode: Opcode::SetQ,
                                    opaque: w as u32,
                                    cas: 0,
                                    key: wl.key(k).to_vec(),
                                    value: wl.value(k),
                                    extra: 0,
                                };
                                Request::decode(&req.encode()).expect("self-encoded frame")
                            })
                            .collect();
                        for resp in binary::execute_pipeline(&cache, w, &decoded) {
                            assert_eq!(resp.opaque, w as u32);
                        }
                    } else {
                        let values: Vec<Vec<u8>> =
                            set_batch.iter().map(|&k| wl.value(k)).collect();
                        let ops: Vec<StoreOp> = set_batch
                            .iter()
                            .zip(&values)
                            .map(|(&k, v)| StoreOp {
                                mode: StoreMode::Set,
                                key: wl.key(k),
                                value: v,
                                flags: 0,
                                exptime: 0,
                            })
                            .collect();
                        cache.store_batch(w, &ops);
                    }
                    set_batch.clear();
                };
                let flush = |batch: &mut Vec<usize>| {
                    if batch.is_empty() {
                        return;
                    }
                    if binary {
                        // Full wire path for the whole pipeline: encode and
                        // decode every quiet-get frame, then dispatch the
                        // run as one batch.
                        let decoded: Vec<Request> = batch
                            .iter()
                            .map(|&k| {
                                let req = Request {
                                    opcode: Opcode::GetKQ,
                                    opaque: w as u32,
                                    cas: 0,
                                    key: wl.key(k).to_vec(),
                                    value: vec![],
                                    extra: 0,
                                };
                                Request::decode(&req.encode()).expect("self-encoded frame")
                            })
                            .collect();
                        for resp in binary::execute_pipeline(&cache, w, &decoded) {
                            assert_eq!(resp.opaque, w as u32);
                        }
                    } else {
                        let keys: Vec<&[u8]> =
                            batch.iter().map(|&k| wl.key(k).as_ref()).collect();
                        cache.get_multi(w, &keys);
                    }
                    batch.clear();
                };
                for op in wl.stream(w) {
                    if multiget > 1 {
                        if let Op::Get(k) = op {
                            flush_sets(&mut set_batch);
                            batch.push(k);
                            if batch.len() == multiget {
                                flush(&mut batch);
                            }
                            continue;
                        }
                        flush(&mut batch);
                    }
                    if setq_pipeline > 1 {
                        if let Op::Set(k) = op {
                            set_batch.push(k);
                            if set_batch.len() == setq_pipeline {
                                flush_sets(&mut set_batch);
                            }
                            continue;
                        }
                        flush_sets(&mut set_batch);
                    }
                    if binary {
                        // Full wire path: encode, decode, dispatch.
                        let req = match op {
                            Op::Get(k) => Request {
                                opcode: Opcode::Get,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: vec![],
                                extra: 0,
                            },
                            Op::Set(k) => Request {
                                opcode: Opcode::Set,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: wl.value(k),
                                extra: 0,
                            },
                            Op::Delete(k) => Request {
                                opcode: Opcode::Delete,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: vec![],
                                extra: 0,
                            },
                            Op::Incr(k, d) => Request {
                                opcode: Opcode::Increment,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: vec![],
                                extra: d,
                            },
                        };
                        let wire = req.encode();
                        let decoded = Request::decode(&wire).expect("self-encoded frame");
                        let resp = binary::execute(&cache, w, &decoded);
                        assert_eq!(resp.opaque, w as u32);
                    } else {
                        match op {
                            Op::Get(k) => {
                                cache.get(w, wl.key(k));
                            }
                            Op::Set(k) => {
                                cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                            }
                            Op::Delete(k) => {
                                cache.delete(w, wl.key(k));
                            }
                            Op::Incr(k, d) => {
                                cache.arith(w, wl.key(k), d, true);
                            }
                        }
                    }
                }
                flush(&mut batch);
                flush_sets(&mut set_batch);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total_ops = args.concurrency * args.execute_number;
    let stats = cache.stats();
    let tm = cache.tm_stats();
    println!(
        "{} ops in {:.3}s = {:.0} ops/s  ({} threads, {} branch, {}, {}% reads, \
         multiget {}, setq-pipeline {}, magazine {})",
        total_ops,
        secs,
        total_ops as f64 / secs,
        args.concurrency,
        args.branch,
        if args.binary { "binary" } else { "api" },
        args.read_ratio,
        args.multiget,
        args.setq_pipeline,
        args.magazine,
    );
    println!(
        "hits={} misses={} evictions={} expansions={} rebalances={}",
        stats.threads.get_hits,
        stats.threads.get_misses,
        stats.global.evictions,
        stats.global.expansions,
        stats.global.rebalances,
    );
    println!("tm: {tm}");
    if args.adapt || args.hot_slots > 0 {
        let (algo, cm) = cache.tm_config();
        println!(
            "adapt: epochs={} switches={} mag_resizes={} ro_tunes={} \
             magazine_cap={} lru_bump_every={} now={algo}/{cm}",
            stats.adapt_epochs,
            stats.adapt_switches,
            stats.adapt_mag_resizes,
            stats.adapt_ro_tunes,
            stats.magazine_cap,
            stats.lru_bump_every,
        );
        println!(
            "hot: armed={} hits={} installs={} invalidations={}",
            stats.hot_armed, stats.hot_hits, stats.hot_installs, stats.hot_invalidations,
        );
    }
}

/// The `--phase-shift` schedule: three back-to-back phases with sharply
/// different profiles — read-mostly uniform, write-storm uniform, and
/// read-heavy hot-key zipfian — over one live cache, the workload the
/// adaptive controller exists for. Per-phase throughput and the
/// configuration the controller landed on print after each phase; the
/// final line is the aggregate ops/s used by the adaptive-vs-static
/// comparison in EXPERIMENTS.md.
fn run_phase_shift(args: &Args) {
    let phases: [(&str, u32, f64); 3] = [
        ("read-mostly", 98, 0.0),
        ("write-storm", 10, 0.0),
        ("hot-zipfian", 90, if args.zipf > 0.0 { args.zipf } else { 0.9 }),
    ];
    let handle = McCache::start(McConfig {
        branch: args.branch,
        workers: args.concurrency,
        magazine: args.magazine,
        adapt: args.adapt,
        adapt_epoch_ms: args.adapt_epoch_ms,
        hot_slots: args.hot_slots,
        algorithm: args.algorithm.unwrap_or_default(),
        contention: args.cm,
        // GETs ride the pure-read fast lane (§5) so a read-dominated
        // phase is visible to the controller as read-only commits, and
        // the LRU-bump cadence starts wide enough that bump writes don't
        // drown the read signal.
        refcount_elision: true,
        lru_bump_every: 16,
        ..Default::default()
    });
    let cache = handle.cache().clone();
    // Preload so phase 1's reads hit.
    let preload = Workload::builder()
        .concurrency(args.concurrency)
        .execute_number(1)
        .key_count(args.keys)
        .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
        .build();
    for i in 0..preload.key_count() {
        cache.set(0, preload.key(i), &preload.value(i), 0, 0);
    }

    let total_start = Instant::now();
    let mut total_ops = 0usize;
    for (pi, &(name, read_ratio, zipf)) in phases.iter().enumerate() {
        let wl = Arc::new(
            Workload::builder()
                .concurrency(args.concurrency)
                .execute_number(args.execute_number)
                .key_count(args.keys)
                .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
                .seed(0xC0FFEE + pi as u64)
                .zipf(zipf)
                .mix(OpMix {
                    get: read_ratio,
                    set: 100 - read_ratio,
                    delete: 0,
                    incr: 0,
                })
                .build(),
        );
        let start = Instant::now();
        std::thread::scope(|s| {
            for w in 0..args.concurrency {
                let cache = cache.clone();
                let wl = wl.clone();
                s.spawn(move || {
                    for op in wl.stream(w) {
                        match op {
                            Op::Get(k) => {
                                cache.get(w, wl.key(k));
                            }
                            Op::Set(k) => {
                                cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                            }
                            Op::Delete(k) => {
                                cache.delete(w, wl.key(k));
                            }
                            Op::Incr(k, d) => {
                                cache.arith(w, wl.key(k), d, true);
                            }
                        }
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let ops = args.concurrency * args.execute_number;
        total_ops += ops;
        let (algo, cm) = cache.tm_config();
        let s = cache.stats();
        println!(
            "phase {name}: {} ops in {secs:.3}s = {:.0} ops/s  \
             (now {algo}/{cm}, switches={}, magazine_cap={}, bump_every={}, \
             hot_armed={}, hot_hits={})",
            ops,
            ops as f64 / secs,
            s.adapt_switches,
            s.magazine_cap,
            s.lru_bump_every,
            s.hot_armed,
            s.hot_hits,
        );
    }
    let secs = total_start.elapsed().as_secs_f64();
    let s = cache.stats();
    println!(
        "phase-shift total: {total_ops} ops in {secs:.3}s = {:.0} ops/s  \
         ({} threads, {} branch, adapt={}, epoch={}ms, hot_slots={}, magazine={})",
        total_ops as f64 / secs,
        args.concurrency,
        args.branch,
        if args.adapt { "on" } else { "off" },
        args.adapt_epoch_ms,
        args.hot_slots,
        args.magazine,
    );
    println!(
        "adapt: epochs={} switches={} mag_resizes={} ro_tunes={} \
         hot: armed={} hits={} installs={} invalidations={}",
        s.adapt_epochs,
        s.adapt_switches,
        s.adapt_mag_resizes,
        s.adapt_ro_tunes,
        s.hot_armed,
        s.hot_hits,
        s.hot_installs,
        s.hot_invalidations,
    );
}

/// The `--restart` mode: memslap meets `kill -TERM`. Loads the whole
/// keyspace with the redo log attached, shuts down gracefully (sealing
/// the log), restarts a second cache on the same directory, and verifies
/// every key against the workload oracle — timing each phase so warm
/// restarts are a measured artifact, not folklore.
fn run_restart(args: &Args) {
    let owned_tmp = args.dur_path.is_none();
    let dir = args.dur_path.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("mcslap-restart-{}", std::process::id()))
    });
    if owned_tmp {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create restart dir");
    }
    let wl = Workload::builder()
        .concurrency(args.concurrency)
        .execute_number(args.execute_number)
        .key_count(args.keys)
        .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
        .binary(args.binary)
        .mix(OpMix { get: 0, set: 100, delete: 0, incr: 0 })
        .build();
    let cfg = || McConfig {
        branch: args.branch,
        workers: args.concurrency,
        magazine: args.magazine,
        dur_path: Some(dir.clone()),
        dur_fsync: args.dur_fsync,
        ..Default::default()
    };

    // Phase 1: load. One loud set per key, all workers.
    let load_start = Instant::now();
    let handle = McCache::start(cfg());
    let cache = handle.cache().clone();
    std::thread::scope(|s| {
        for w in 0..args.concurrency {
            let cache = cache.clone();
            let wl = &wl;
            s.spawn(move || {
                for i in (w..wl.key_count()).step_by(args.concurrency) {
                    cache.set(w, wl.key(i), &wl.value(i), 0, 0);
                }
            });
        }
    });
    let d = cache.dur_stats().expect("restart mode always logs");
    let load_secs = load_start.elapsed().as_secs_f64();
    println!(
        "restart: loaded {} keys in {:.3}s = {:.0} sets/s ({} branch, fsync={}, \
         dur_appends={} dur_fsyncs={} dur_bytes={})",
        args.keys,
        load_secs,
        args.keys as f64 / load_secs,
        args.branch,
        args.dur_fsync,
        d.appends,
        d.fsyncs,
        d.bytes,
    );

    // Phase 2: graceful shutdown seals the segment.
    let seal_start = Instant::now();
    drop(handle);
    println!("restart: sealed + shut down in {:.3}s", seal_start.elapsed().as_secs_f64());

    // Phase 3: warm restart — recovery runs inside `start`, before the
    // cache accepts its first operation.
    let boot_start = Instant::now();
    let handle = McCache::start(cfg());
    let boot_secs = boot_start.elapsed().as_secs_f64();
    let d = handle.dur_stats().expect("restart mode always logs");
    assert_eq!(
        d.torn_records_dropped, 0,
        "a sealed log must recover without torn records"
    );
    println!(
        "restart: recovered {} items in {:.3}s = {:.0} items/s (torn={})",
        d.recovered_items,
        boot_secs,
        d.recovered_items as f64 / boot_secs.max(1e-9),
        d.torn_records_dropped,
    );

    // Phase 4: verify every key against the oracle.
    let mut verified = 0usize;
    for i in 0..wl.key_count() {
        let got = handle.get(0, wl.key(i)).unwrap_or_else(|| {
            panic!("key index {i} lost across restart")
        });
        assert!(wl.verify_value(i, &got.data), "key index {i} recovered wrong bytes");
        verified += 1;
    }
    println!("restart: verified {verified}/{} keys", wl.key_count());
    drop(handle);
    if owned_tmp {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A stream-transport target: TCP address or Unix socket path. The
/// protocol is byte-identical on both, so every socket mode runs against
/// either through one connect seam.
#[derive(Clone)]
enum StreamTarget {
    Tcp(String),
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl StreamTarget {
    fn from_args(args: &Args) -> Option<StreamTarget> {
        #[cfg(unix)]
        if let Some(p) = args.unix.clone() {
            return Some(StreamTarget::Unix(p));
        }
        #[cfg(not(unix))]
        if args.unix.is_some() {
            eprintln!("--unix is only supported on Unix platforms");
            std::process::exit(2);
        }
        args.tcp.clone().map(StreamTarget::Tcp)
    }

    fn connect(&self) -> std::io::Result<WireConn> {
        match self {
            StreamTarget::Tcp(addr) => WireConn::connect(addr),
            #[cfg(unix)]
            StreamTarget::Unix(path) => WireConn::connect_unix(path),
        }
    }

    /// Connects with retry — the churn storm and the 10k fan-in can
    /// outrun the server's accept backlog, which surfaces as transient
    /// refusals/resets rather than queueing.
    fn connect_retry(&self) -> WireConn {
        let mut delay = std::time::Duration::from_millis(1);
        for _ in 0..200 {
            match self.connect() {
                Ok(c) => return c,
                Err(_) => {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(std::time::Duration::from_millis(100));
                }
            }
        }
        panic!("could not connect to {} after retries", self.describe());
    }

    fn describe(&self) -> String {
        match self {
            StreamTarget::Tcp(addr) => format!("tcp {addr}"),
            #[cfg(unix)]
            StreamTarget::Unix(path) => format!("unix {}", path.display()),
        }
    }
}

/// Sorts nanosecond samples and prints p50/p95/p99 in microseconds.
fn print_latency(label: &str, mut ns: Vec<u64>) {
    if ns.is_empty() {
        return;
    }
    ns.sort_unstable();
    let pick = |p: f64| ns[((ns.len() - 1) as f64 * p).round() as usize] as f64 / 1000.0;
    println!(
        "latency_us[{label}]: p50={:.1} p95={:.1} p99={:.1} (n={})",
        pick(0.50),
        pick(0.95),
        pick(0.99),
        ns.len(),
    );
}

/// Per-worker latency samples drain into one shared sink at thread exit.
fn drain_latency(sink: &Mutex<Vec<u64>>, local: Vec<u64>) {
    sink.lock().expect("latency sink").extend(local);
}

/// Sentinel opaque for the trailing Noop in quiet pipelines; key
/// indices (the other opaques in flight) can never reach it.
const NOOP_OPAQUE: u32 = u32::MAX;

/// The `--tcp`/`--unix` mode: same workloads, real sockets against a
/// running `mcached`. Every GET hit is verified against the workload
/// oracle (values are a pure function of the key index), the report
/// includes per-roundtrip latency percentiles, and the run asserts the
/// server counted zero frame errors.
fn run_stream(args: &Args, target: &StreamTarget) {
    let workers = if args.connections > 0 {
        args.connections
    } else {
        args.concurrency
    };
    let wl = Arc::new(
        Workload::builder()
            .concurrency(workers)
            .execute_number(args.execute_number)
            .key_count(args.keys)
            .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
            .binary(args.binary)
            .mix(OpMix {
                get: args.read_ratio as u32,
                set: 100 - args.read_ratio as u32,
                delete: 0,
                incr: 0,
            })
            .build(),
    );

    // Preload the whole keyspace through one connection: noreply sets
    // in bulk writes, then a version roundtrip as the sync point.
    {
        let mut conn = target.connect().expect("connect for preload");
        let mut buf = Vec::new();
        for i in 0..wl.key_count() {
            let value = wl.value(i);
            buf.extend_from_slice(
                format!(
                    "set {} 0 0 {} noreply\r\n",
                    String::from_utf8_lossy(wl.key(i)),
                    value.len()
                )
                .as_bytes(),
            );
            buf.extend_from_slice(&value);
            buf.extend_from_slice(b"\r\n");
            if buf.len() > 256 << 10 {
                conn.send(&buf).expect("preload send");
                buf.clear();
            }
        }
        conn.send(&buf).expect("preload send");
        let v = conn.ascii_line(b"version\r\n").expect("preload sync");
        assert!(v.starts_with(b"VERSION"), "unexpected preload sync: {v:?}");
    }

    let lat = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let wl = wl.clone();
            let lat = &lat;
            s.spawn(move || run_stream_worker(args, target, &wl, w, lat));
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total_ops = workers * args.execute_number;

    let mut conn = target.connect().expect("connect for stats");
    let stats = conn.ascii_stats().expect("final stats");
    let stat = |k: &str| {
        stats
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("server stats missing {k}"))
    };
    println!(
        "{} ops in {:.3}s = {:.0} ops/s  ({} connections, {}, {}, {}% reads, \
         multiget {}, setq-pipeline {})",
        total_ops,
        secs,
        total_ops as f64 / secs,
        workers,
        target.describe(),
        if args.binary { "binary" } else { "ascii" },
        args.read_ratio,
        args.multiget,
        args.setq_pipeline,
    );
    print_latency("roundtrip", lat.into_inner().expect("latency sink"));
    println!(
        "server: hits={} misses={} curr_connections={} bytes_read={} bytes_written={} \
         frame_errors={}",
        stat("get_hits"),
        stat("get_misses"),
        stat("curr_connections"),
        stat("bytes_read"),
        stat("bytes_written"),
        stat("frame_errors"),
    );
    assert_eq!(stat("frame_errors"), 0, "clean run must not desync frames");
    assert_eq!(stat("request_panics"), 0, "no handler may have panicked");
}

fn run_stream_worker(
    args: &Args,
    target: &StreamTarget,
    wl: &Workload,
    w: usize,
    lat_sink: &Mutex<Vec<u64>>,
) {
    let mut conn = target.connect().expect("worker connect");
    let mut lat: Vec<u64> = Vec::new();
    let mut get_batch: Vec<usize> = Vec::new();
    let mut set_batch: Vec<usize> = Vec::new();
    for op in wl.stream(w) {
        if args.multiget > 1 {
            if let Op::Get(k) = op {
                flush_tcp_sets(args, &mut conn, wl, &mut set_batch, &mut lat);
                get_batch.push(k);
                if get_batch.len() == args.multiget {
                    flush_tcp_gets(args, &mut conn, wl, &mut get_batch, &mut lat);
                }
                continue;
            }
            flush_tcp_gets(args, &mut conn, wl, &mut get_batch, &mut lat);
        }
        if args.setq_pipeline > 1 {
            if let Op::Set(k) = op {
                set_batch.push(k);
                if set_batch.len() == args.setq_pipeline {
                    flush_tcp_sets(args, &mut conn, wl, &mut set_batch, &mut lat);
                }
                continue;
            }
            flush_tcp_sets(args, &mut conn, wl, &mut set_batch, &mut lat);
        }
        let op_start = Instant::now();
        if args.binary {
            let req = match op {
                Op::Get(k) => Request {
                    opcode: Opcode::Get,
                    opaque: k as u32,
                    cas: 0,
                    key: wl.key(k).to_vec(),
                    value: vec![],
                    extra: 0,
                },
                Op::Set(k) => Request {
                    opcode: Opcode::Set,
                    opaque: k as u32,
                    cas: 0,
                    key: wl.key(k).to_vec(),
                    value: wl.value(k),
                    extra: 0,
                },
                Op::Delete(k) => Request {
                    opcode: Opcode::Delete,
                    opaque: k as u32,
                    cas: 0,
                    key: wl.key(k).to_vec(),
                    value: vec![],
                    extra: 0,
                },
                Op::Incr(k, d) => Request {
                    opcode: Opcode::Increment,
                    opaque: k as u32,
                    cas: 0,
                    key: wl.key(k).to_vec(),
                    value: vec![],
                    extra: d,
                },
            };
            let resp = conn.binary_roundtrip(&req).expect("binary roundtrip");
            assert_eq!(resp.opaque, req.opaque, "opaque echo");
            match op {
                Op::Get(k) => match resp.status {
                    Status::Ok => assert!(
                        wl.verify_value(k, &resp.value),
                        "GET returned wrong bytes for key index {k}"
                    ),
                    Status::KeyNotFound => {}
                    other => panic!("GET answered {other:?}"),
                },
                Op::Set(_) => assert_eq!(resp.status, Status::Ok, "SET must store"),
                Op::Delete(_) => assert!(
                    matches!(resp.status, Status::Ok | Status::KeyNotFound),
                    "DELETE answered {:?}",
                    resp.status
                ),
                Op::Incr(..) => {}
            }
        } else {
            match op {
                Op::Get(k) => {
                    let hits = conn.ascii_get(&[wl.key(k).as_ref()], false).expect("get");
                    if let Some(hit) = hits.first() {
                        assert!(
                            wl.verify_value(k, &hit.data),
                            "GET returned wrong bytes for key index {k}"
                        );
                    }
                }
                Op::Set(k) => {
                    let value = wl.value(k);
                    let mut req = format!(
                        "set {} 0 0 {}\r\n",
                        String::from_utf8_lossy(wl.key(k)),
                        value.len()
                    )
                    .into_bytes();
                    req.extend_from_slice(&value);
                    req.extend_from_slice(b"\r\n");
                    let line = conn.ascii_line(&req).expect("set");
                    assert_eq!(line, b"STORED", "SET must store");
                }
                Op::Delete(k) => {
                    let req = format!("delete {}\r\n", String::from_utf8_lossy(wl.key(k)));
                    let line = conn.ascii_line(req.as_bytes()).expect("delete");
                    assert!(
                        line == b"DELETED" || line == b"NOT_FOUND",
                        "DELETE answered {:?}",
                        String::from_utf8_lossy(&line)
                    );
                }
                Op::Incr(k, d) => {
                    let req = format!("incr {} {}\r\n", String::from_utf8_lossy(wl.key(k)), d);
                    conn.ascii_line(req.as_bytes()).expect("incr");
                }
            }
        }
        lat.push(op_start.elapsed().as_nanos() as u64);
    }
    flush_tcp_gets(args, &mut conn, wl, &mut get_batch, &mut lat);
    flush_tcp_sets(args, &mut conn, wl, &mut set_batch, &mut lat);
    drain_latency(lat_sink, lat);
}

/// Flushes a `--multiget` batch over the wire: one `get k1 .. kn` line
/// (ASCII) or a GETKQ burst terminated by a Noop (binary). Every hit is
/// verified against the oracle.
fn flush_tcp_gets(
    args: &Args,
    conn: &mut WireConn,
    wl: &Workload,
    batch: &mut Vec<usize>,
    lat: &mut Vec<u64>,
) {
    if batch.is_empty() {
        return;
    }
    let flush_start = Instant::now();
    if args.binary {
        let mut reqs: Vec<Request> = batch
            .iter()
            .map(|&k| Request {
                opcode: Opcode::GetKQ,
                opaque: k as u32,
                cas: 0,
                key: wl.key(k).to_vec(),
                value: vec![],
                extra: 0,
            })
            .collect();
        reqs.push(Request {
            opcode: Opcode::Noop,
            opaque: NOOP_OPAQUE,
            cas: 0,
            key: vec![],
            value: vec![],
            extra: 0,
        });
        let resps = conn.binary_pipeline(&reqs, NOOP_OPAQUE).expect("multiget");
        for resp in &resps[..resps.len() - 1] {
            assert_eq!(resp.status, Status::Ok, "quiet get only answers hits");
            let k = resp.opaque as usize;
            assert_eq!(resp.key.as_slice(), wl.key(k).as_ref(), "GETKQ echoes its key");
            assert!(
                wl.verify_value(k, &resp.value),
                "multiget returned wrong bytes for key index {k}"
            );
        }
    } else {
        let keys: Vec<&[u8]> = batch.iter().map(|&k| wl.key(k).as_ref()).collect();
        let hits = conn.ascii_get(&keys, false).expect("multiget");
        for hit in hits {
            let k = batch
                .iter()
                .copied()
                .find(|&k| wl.key(k).as_ref() == hit.key.as_slice())
                .expect("hit echoes a requested key");
            assert!(
                wl.verify_value(k, &hit.data),
                "multiget returned wrong bytes for key index {k}"
            );
        }
    }
    lat.push(flush_start.elapsed().as_nanos() as u64);
    batch.clear();
}

/// Flushes a `--setq-pipeline` batch: a concatenated burst of loud sets
/// (ASCII) or quiet SETQ frames terminated by a Noop (binary).
fn flush_tcp_sets(
    args: &Args,
    conn: &mut WireConn,
    wl: &Workload,
    batch: &mut Vec<usize>,
    lat: &mut Vec<u64>,
) {
    if batch.is_empty() {
        return;
    }
    let flush_start = Instant::now();
    if args.binary {
        let mut reqs: Vec<Request> = batch
            .iter()
            .map(|&k| Request {
                opcode: Opcode::SetQ,
                opaque: k as u32,
                cas: 0,
                key: wl.key(k).to_vec(),
                value: wl.value(k),
                extra: 0,
            })
            .collect();
        reqs.push(Request {
            opcode: Opcode::Noop,
            opaque: NOOP_OPAQUE,
            cas: 0,
            key: vec![],
            value: vec![],
            extra: 0,
        });
        let resps = conn.binary_pipeline(&reqs, NOOP_OPAQUE).expect("setq burst");
        assert_eq!(
            resps.len(),
            1,
            "quiet sets must all succeed silently: {resps:?}"
        );
    } else {
        let mut wire = Vec::new();
        for &k in batch.iter() {
            let value = wl.value(k);
            wire.extend_from_slice(
                format!(
                    "set {} 0 0 {}\r\n",
                    String::from_utf8_lossy(wl.key(k)),
                    value.len()
                )
                .as_bytes(),
            );
            wire.extend_from_slice(&value);
            wire.extend_from_slice(b"\r\n");
        }
        conn.send(&wire).expect("pipelined sets");
        for _ in batch.iter() {
            let line = conn.read_line().expect("set reply");
            assert_eq!(line, b"STORED", "pipelined SET must store");
        }
    }
    lat.push(flush_start.elapsed().as_nanos() as u64);
    batch.clear();
}

/// Parses the reassembled ASCII response to a single-key UDP `get`:
/// `Some(data)` on a hit, `None` on a clean miss. Panics on anything
/// else — UDP responses are whole by construction once reassembled.
fn parse_udp_get(resp: &[u8]) -> Option<Vec<u8>> {
    if resp == b"END\r\n" {
        return None;
    }
    let header_end = resp.windows(2).position(|w| w == b"\r\n").expect("VALUE line");
    let header = String::from_utf8_lossy(&resp[..header_end]);
    let mut parts = header.split_whitespace();
    assert_eq!(parts.next(), Some("VALUE"), "unexpected UDP get response: {header:?}");
    let _key = parts.next().expect("key");
    let _flags = parts.next().expect("flags");
    let len: usize = parts.next().expect("len").parse().expect("len parses");
    let data_start = header_end + 2;
    let data = resp[data_start..data_start + len].to_vec();
    assert_eq!(
        &resp[data_start + len..],
        b"\r\nEND\r\n",
        "UDP get response must end cleanly"
    );
    Some(data)
}

/// The `--udp` mode: the ASCII workload over memcached-framed UDP
/// datagrams. Each request is one datagram; responses reassemble from
/// sequenced datagrams (large values fan out across several). Every hit
/// is oracle-verified and the run asserts zero server frame errors.
fn run_udp(args: &Args, addr: &str) {
    let workers = if args.connections > 0 {
        args.connections
    } else {
        args.concurrency
    };
    let wl = Arc::new(
        Workload::builder()
            .concurrency(workers)
            .execute_number(args.execute_number)
            .key_count(args.keys)
            .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
            .mix(OpMix {
                get: args.read_ratio as u32,
                set: 100 - args.read_ratio as u32,
                delete: 0,
                incr: 0,
            })
            .build(),
    );

    // Preload serially through one client — loud sets, each acked, so
    // the keyspace is fully resident before the clock starts.
    {
        let mut client = UdpClient::connect(addr).expect("udp connect for preload");
        for i in 0..wl.key_count() {
            let value = wl.value(i);
            let mut req = format!(
                "set {} 0 0 {}\r\n",
                String::from_utf8_lossy(wl.key(i)),
                value.len()
            )
            .into_bytes();
            req.extend_from_slice(&value);
            req.extend_from_slice(b"\r\n");
            let resp = client.roundtrip(&req).expect("preload set");
            assert_eq!(resp, b"STORED\r\n", "preload SET must store");
        }
    }

    let lat = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let wl = wl.clone();
            let lat = &lat;
            s.spawn(move || {
                let mut client = UdpClient::connect(addr).expect("udp worker connect");
                let mut local: Vec<u64> = Vec::new();
                for op in wl.stream(w) {
                    let op_start = Instant::now();
                    match op {
                        Op::Get(k) => {
                            let req = format!("get {}\r\n", String::from_utf8_lossy(wl.key(k)));
                            let resp = client.roundtrip(req.as_bytes()).expect("udp get");
                            if let Some(data) = parse_udp_get(&resp) {
                                assert!(
                                    wl.verify_value(k, &data),
                                    "UDP GET returned wrong bytes for key index {k}"
                                );
                            }
                        }
                        Op::Set(k) => {
                            let value = wl.value(k);
                            let mut req = format!(
                                "set {} 0 0 {}\r\n",
                                String::from_utf8_lossy(wl.key(k)),
                                value.len()
                            )
                            .into_bytes();
                            req.extend_from_slice(&value);
                            req.extend_from_slice(b"\r\n");
                            let resp = client.roundtrip(&req).expect("udp set");
                            assert_eq!(resp, b"STORED\r\n", "UDP SET must store");
                        }
                        Op::Delete(k) => {
                            let req =
                                format!("delete {}\r\n", String::from_utf8_lossy(wl.key(k)));
                            client.roundtrip(req.as_bytes()).expect("udp delete");
                        }
                        Op::Incr(k, d) => {
                            let req = format!(
                                "incr {} {}\r\n",
                                String::from_utf8_lossy(wl.key(k)),
                                d
                            );
                            client.roundtrip(req.as_bytes()).expect("udp incr");
                        }
                    }
                    local.push(op_start.elapsed().as_nanos() as u64);
                }
                drain_latency(lat, local);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total_ops = workers * args.execute_number;

    let mut client = UdpClient::connect(addr).expect("udp connect for stats");
    let resp = client.roundtrip(b"stats\r\n").expect("final stats");
    let mut stats: Vec<(String, u64)> = Vec::new();
    for line in resp.split(|&b| b == b'\n') {
        let text = String::from_utf8_lossy(line);
        let mut parts = text.split_whitespace();
        if let (Some("STAT"), Some(k), Some(v)) = (parts.next(), parts.next(), parts.next()) {
            stats.push((k.to_string(), v.parse().expect("stat value")));
        }
    }
    let stat = |k: &str| {
        stats
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("server stats missing {k}"))
    };
    println!(
        "{} ops in {:.3}s = {:.0} ops/s  ({} clients, udp {}, ascii, {}% reads)",
        total_ops,
        secs,
        total_ops as f64 / secs,
        workers,
        addr,
        args.read_ratio,
    );
    print_latency("udp-roundtrip", lat.into_inner().expect("latency sink"));
    println!(
        "server: hits={} misses={} udp_datagrams_rx={} udp_datagrams_tx={} frame_errors={}",
        stat("get_hits"),
        stat("get_misses"),
        stat("udp_datagrams_rx"),
        stat("udp_datagrams_tx"),
        stat("frame_errors"),
    );
    assert_eq!(stat("frame_errors"), 0, "clean UDP run must not desync frames");
    assert_eq!(stat("request_panics"), 0, "no handler may have panicked");
}

/// The `--churn` storm: every worker runs `--execute-number` full
/// connection lifecycles — connect, one oracle-checked set + get, `quit`,
/// wait for the server's FIN. Exercises accept, registration, and
/// teardown at rates steady-state workloads never reach; the latency
/// report is per whole lifecycle.
fn run_churn(args: &Args, target: &StreamTarget) {
    let workers = args.churn;
    let cycles = args.execute_number;
    let wl = Workload::builder()
        .concurrency(workers)
        .execute_number(1)
        .key_count(args.keys)
        .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
        .build();

    let lat = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let wl = &wl;
            let lat = &lat;
            s.spawn(move || {
                let mut local: Vec<u64> = Vec::new();
                for c in 0..cycles {
                    let k = (w * cycles + c) % wl.key_count();
                    let cycle_start = Instant::now();
                    let mut conn = target.connect_retry();
                    let value = wl.value(k);
                    let mut req = format!(
                        "set {} 0 0 {}\r\n",
                        String::from_utf8_lossy(wl.key(k)),
                        value.len()
                    )
                    .into_bytes();
                    req.extend_from_slice(&value);
                    req.extend_from_slice(b"\r\n");
                    let line = conn.ascii_line(&req).expect("churn set");
                    assert_eq!(line, b"STORED", "churn SET must store");
                    let hits = conn.ascii_get(&[wl.key(k).as_ref()], false).expect("churn get");
                    assert!(
                        wl.verify_value(k, &hits[0].data),
                        "churn GET returned wrong bytes for key index {k}"
                    );
                    conn.send(b"quit\r\n").expect("churn quit");
                    // The server closes after `quit`; reading the FIN
                    // proves the teardown path ran, not just our drop.
                    assert!(conn.read_line().is_err(), "server must close after quit");
                    local.push(cycle_start.elapsed().as_nanos() as u64);
                }
                drain_latency(lat, local);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total = workers * cycles;

    let mut conn = target.connect_retry();
    let stats = conn.ascii_stats().expect("final stats");
    let stat = |k: &str| {
        stats
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("server stats missing {k}"))
    };
    println!(
        "{} connection lifecycles in {:.3}s = {:.0} conns/s  ({} churn workers, {})",
        total,
        secs,
        total as f64 / secs,
        workers,
        target.describe(),
    );
    print_latency("conn-lifecycle", lat.into_inner().expect("latency sink"));
    println!(
        "server: total_connections={} curr_connections={} accept_errors={} frame_errors={}",
        stat("total_connections"),
        stat("curr_connections"),
        stat("accept_errors"),
        stat("frame_errors"),
    );
    assert!(
        stat("total_connections") >= total as u64,
        "server must have seen every churned connection"
    );
    assert_eq!(stat("frame_errors"), 0, "clean churn must not desync frames");
    assert_eq!(stat("request_panics"), 0, "no handler may have panicked");
}

/// The `--fanin` scenario: hold N mostly-idle connections open at once
/// while a thin stream of oracle-checked gets rotates across them, then
/// prove every single connection still answers a `version` roundtrip.
/// This is the readiness-notification showcase — a polling loop pays for
/// all N sockets every iteration; epoll pays only for the active ones.
fn run_fanin(args: &Args, target: &StreamTarget) {
    let total_conns = args.fanin;
    let threads = args.concurrency.min(total_conns).max(1);
    let wl = Workload::builder()
        .concurrency(threads)
        .execute_number(1)
        .key_count(args.keys)
        .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
        .build();

    // Preload through one connection so the rotating gets can hit.
    {
        let mut conn = target.connect_retry();
        let mut buf = Vec::new();
        for i in 0..wl.key_count() {
            let value = wl.value(i);
            buf.extend_from_slice(
                format!(
                    "set {} 0 0 {} noreply\r\n",
                    String::from_utf8_lossy(wl.key(i)),
                    value.len()
                )
                .as_bytes(),
            );
            buf.extend_from_slice(&value);
            buf.extend_from_slice(b"\r\n");
            if buf.len() > 256 << 10 {
                conn.send(&buf).expect("fanin preload send");
                buf.clear();
            }
        }
        conn.send(&buf).expect("fanin preload send");
        let v = conn.ascii_line(b"version\r\n").expect("fanin preload sync");
        assert!(v.starts_with(b"VERSION"), "unexpected preload sync: {v:?}");
    }

    let lat = Mutex::new(Vec::new());
    let opened = Mutex::new(0usize);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let wl = &wl;
            let lat = &lat;
            let opened = &opened;
            s.spawn(move || {
                // This thread's share of the fan-in set.
                let share = total_conns / threads + usize::from(t < total_conns % threads);
                let mut conns: Vec<WireConn> = Vec::with_capacity(share);
                for _ in 0..share {
                    conns.push(target.connect_retry());
                }
                *opened.lock().expect("opened") += conns.len();
                let mut local: Vec<u64> = Vec::new();
                // A thin stream of gets rotates over the set: every
                // connection is touched at least once when
                // execute_number >= share, the rest stay idle — the
                // server must keep them all registered without burning
                // CPU on their silence.
                for i in 0..args.execute_number {
                    let conn = &mut conns[i % share];
                    let k = (t * args.execute_number + i) % wl.key_count();
                    let op_start = Instant::now();
                    let hits = conn.ascii_get(&[wl.key(k).as_ref()], false).expect("fanin get");
                    assert!(
                        wl.verify_value(k, &hits[0].data),
                        "fan-in GET returned wrong bytes for key index {k}"
                    );
                    local.push(op_start.elapsed().as_nanos() as u64);
                }
                // Liveness sweep: every held connection must still answer.
                for conn in &mut conns {
                    let v = conn.ascii_line(b"version\r\n").expect("fanin liveness");
                    assert!(v.starts_with(b"VERSION"), "fan-in connection went dead: {v:?}");
                }
                drain_latency(lat, local);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let opened = opened.into_inner().expect("opened");
    assert_eq!(opened, total_conns, "every fan-in connection must open");
    let total_ops = threads * args.execute_number;

    let mut conn = target.connect_retry();
    let stats = conn.ascii_stats().expect("final stats");
    let stat = |k: &str| {
        stats
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("server stats missing {k}"))
    };
    println!(
        "{} gets across {} held connections in {:.3}s = {:.0} ops/s  ({} threads, {})",
        total_ops,
        total_conns,
        secs,
        total_ops as f64 / secs,
        threads,
        target.describe(),
    );
    print_latency("fanin-get", lat.into_inner().expect("latency sink"));
    println!(
        "server: curr_connections={} total_connections={} accept_errors={} \
         conn_timeouts={} frame_errors={}",
        stat("curr_connections"),
        stat("total_connections"),
        stat("accept_errors"),
        stat("conn_timeouts"),
        stat("frame_errors"),
    );
    assert_eq!(stat("frame_errors"), 0, "clean fan-in must not desync frames");
    assert_eq!(stat("request_panics"), 0, "no handler may have panicked");
}
