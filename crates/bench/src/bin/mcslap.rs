//! `mcslap`: a memslap-flag-compatible load generator that drives the
//! cache through the **binary protocol** layer (encode → decode →
//! dispatch for every operation), end to end.
//!
//! ```console
//! $ cargo run --release -p bench --bin mcslap -- \
//!       --concurrency 4 --execute-number 10000 --binary --branch ip-nolock
//! ```

use std::sync::Arc;
use std::time::Instant;

use mcache::proto::binary::{self, Opcode, Request};
use mcache::{Branch, McCache, McConfig, Stage, StoreMode, StoreOp};
use workload::{Op, OpMix, Workload};

struct Args {
    concurrency: usize,
    execute_number: usize,
    binary: bool,
    branch: Branch,
    value_size: usize,
    keys: usize,
    /// Percent of operations that are GETs (the rest are SETs).
    read_ratio: usize,
    /// Batch consecutive GETs n-at-a-time through the multiget path
    /// (ASCII-style `get k1 .. kn` via the API, pipelined quiet GETKQ
    /// frames under `--binary`). 1 = no batching.
    multiget: usize,
    /// Batch consecutive SETs n-at-a-time through the single-transaction
    /// store path (`store_batch` via the API, pipelined quiet SETQ frames
    /// under `--binary`). 1 = no batching.
    setq_pipeline: usize,
    /// Upper bound for uniform per-key value sizes; 0 = fixed
    /// `--value-size` for every key.
    value_size_max: usize,
    /// Per-worker slab magazine capacity (transactional-item branches
    /// only); 0 = off, the 3-transaction store.
    magazine: usize,
}

fn parse_branch(name: &str) -> Option<Branch> {
    Some(match name {
        "baseline" => Branch::Baseline,
        "semaphore" => Branch::Semaphore,
        "ip" => Branch::Ip(Stage::Plain),
        "it" => Branch::It(Stage::Plain),
        "ip-max" => Branch::Ip(Stage::Max),
        "it-max" => Branch::It(Stage::Max),
        "ip-lib" => Branch::Ip(Stage::Lib),
        "it-lib" => Branch::It(Stage::Lib),
        "ip-oncommit" => Branch::Ip(Stage::OnCommit),
        "it-oncommit" => Branch::It(Stage::OnCommit),
        "ip-nolock" => Branch::IpNoLock,
        "it-nolock" => Branch::ItNoLock,
        _ => return None,
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        concurrency: 4,
        execute_number: 10_000,
        binary: false,
        branch: Branch::IpNoLock,
        value_size: 256,
        keys: 2000,
        read_ratio: 90,
        multiget: 1,
        setq_pipeline: 1,
        value_size_max: 0,
        magazine: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| {
            it.next().and_then(|v| v.parse::<usize>().ok())
        };
        match flag.as_str() {
            "--concurrency" | "-c" => {
                if let Some(v) = num(&mut it) {
                    args.concurrency = v.max(1);
                }
            }
            "--execute-number" | "-x" => {
                if let Some(v) = num(&mut it) {
                    args.execute_number = v;
                }
            }
            "--value-size" => {
                if let Some(v) = num(&mut it) {
                    args.value_size = v.max(1);
                }
            }
            "--keys" => {
                if let Some(v) = num(&mut it) {
                    args.keys = v.max(1);
                }
            }
            "--read-ratio" => {
                if let Some(v) = num(&mut it) {
                    args.read_ratio = v.min(100);
                }
            }
            // memslap has no such flag, but every setpath arm is
            // write-shaped; --write-ratio 70 == --read-ratio 30.
            "--write-ratio" => {
                if let Some(v) = num(&mut it) {
                    args.read_ratio = 100 - v.min(100);
                }
            }
            "--value-size-max" => {
                if let Some(v) = num(&mut it) {
                    args.value_size_max = v;
                }
            }
            "--setq-pipeline" => {
                if let Some(v) = num(&mut it) {
                    args.setq_pipeline = v.max(1);
                }
            }
            "--magazine" => {
                if let Some(v) = num(&mut it) {
                    args.magazine = v;
                }
            }
            "--multiget" => {
                if let Some(v) = num(&mut it) {
                    args.multiget = v.max(1);
                }
            }
            "--binary" => args.binary = true,
            "--branch" => {
                if let Some(b) = it.next().as_deref().and_then(parse_branch) {
                    args.branch = b;
                } else {
                    eprintln!("unknown branch; see examples/cache_server.rs for names");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let wl = Arc::new(
        Workload::builder()
            .concurrency(args.concurrency)
            .execute_number(args.execute_number)
            .key_count(args.keys)
            .value_size_range(
                args.value_size,
                args.value_size_max.max(args.value_size),
            )
            .binary(args.binary)
            .mix(OpMix {
                get: args.read_ratio as u32,
                set: 100 - args.read_ratio as u32,
                delete: 0,
                incr: 0,
            })
            .build(),
    );
    let handle = McCache::start(McConfig {
        branch: args.branch,
        workers: args.concurrency,
        magazine: args.magazine,
        ..Default::default()
    });
    let cache = handle.cache().clone();
    for i in 0..wl.key_count() {
        cache.set(0, wl.key(i), &wl.value(i), 0, 0);
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..args.concurrency {
            let cache = cache.clone();
            let wl = wl.clone();
            let binary = args.binary;
            let multiget = args.multiget;
            let setq_pipeline = args.setq_pipeline;
            s.spawn(move || {
                // --multiget batching: consecutive GETs accumulate here and
                // flush n-at-a-time through the single-transaction multiget
                // path; any interleaved write flushes the partial batch
                // first, preserving per-thread order.
                let mut batch: Vec<usize> = Vec::new();
                // --setq-pipeline batching: the write twin — consecutive
                // SETs flush n-at-a-time through the single-transaction
                // store path (quiet SETQ frames on the wire under
                // --binary, `store_batch` through the API).
                let mut set_batch: Vec<usize> = Vec::new();
                let flush_sets = |set_batch: &mut Vec<usize>| {
                    if set_batch.is_empty() {
                        return;
                    }
                    if binary {
                        // Full wire path: encode and decode every quiet
                        // SETQ frame, then dispatch the run as one batch;
                        // successes are silent by protocol.
                        let decoded: Vec<Request> = set_batch
                            .iter()
                            .map(|&k| {
                                let req = Request {
                                    opcode: Opcode::SetQ,
                                    opaque: w as u32,
                                    cas: 0,
                                    key: wl.key(k).to_vec(),
                                    value: wl.value(k),
                                    extra: 0,
                                };
                                Request::decode(&req.encode()).expect("self-encoded frame")
                            })
                            .collect();
                        for resp in binary::execute_pipeline(&cache, w, &decoded) {
                            assert_eq!(resp.opaque, w as u32);
                        }
                    } else {
                        let values: Vec<Vec<u8>> =
                            set_batch.iter().map(|&k| wl.value(k)).collect();
                        let ops: Vec<StoreOp> = set_batch
                            .iter()
                            .zip(&values)
                            .map(|(&k, v)| StoreOp {
                                mode: StoreMode::Set,
                                key: wl.key(k),
                                value: v,
                                flags: 0,
                                exptime: 0,
                            })
                            .collect();
                        cache.store_batch(w, &ops);
                    }
                    set_batch.clear();
                };
                let flush = |batch: &mut Vec<usize>| {
                    if batch.is_empty() {
                        return;
                    }
                    if binary {
                        // Full wire path for the whole pipeline: encode and
                        // decode every quiet-get frame, then dispatch the
                        // run as one batch.
                        let decoded: Vec<Request> = batch
                            .iter()
                            .map(|&k| {
                                let req = Request {
                                    opcode: Opcode::GetKQ,
                                    opaque: w as u32,
                                    cas: 0,
                                    key: wl.key(k).to_vec(),
                                    value: vec![],
                                    extra: 0,
                                };
                                Request::decode(&req.encode()).expect("self-encoded frame")
                            })
                            .collect();
                        for resp in binary::execute_pipeline(&cache, w, &decoded) {
                            assert_eq!(resp.opaque, w as u32);
                        }
                    } else {
                        let keys: Vec<&[u8]> =
                            batch.iter().map(|&k| wl.key(k).as_ref()).collect();
                        cache.get_multi(w, &keys);
                    }
                    batch.clear();
                };
                for op in wl.stream(w) {
                    if multiget > 1 {
                        if let Op::Get(k) = op {
                            flush_sets(&mut set_batch);
                            batch.push(k);
                            if batch.len() == multiget {
                                flush(&mut batch);
                            }
                            continue;
                        }
                        flush(&mut batch);
                    }
                    if setq_pipeline > 1 {
                        if let Op::Set(k) = op {
                            set_batch.push(k);
                            if set_batch.len() == setq_pipeline {
                                flush_sets(&mut set_batch);
                            }
                            continue;
                        }
                        flush_sets(&mut set_batch);
                    }
                    if binary {
                        // Full wire path: encode, decode, dispatch.
                        let req = match op {
                            Op::Get(k) => Request {
                                opcode: Opcode::Get,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: vec![],
                                extra: 0,
                            },
                            Op::Set(k) => Request {
                                opcode: Opcode::Set,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: wl.value(k),
                                extra: 0,
                            },
                            Op::Delete(k) => Request {
                                opcode: Opcode::Delete,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: vec![],
                                extra: 0,
                            },
                            Op::Incr(k, d) => Request {
                                opcode: Opcode::Increment,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: vec![],
                                extra: d,
                            },
                        };
                        let wire = req.encode();
                        let decoded = Request::decode(&wire).expect("self-encoded frame");
                        let resp = binary::execute(&cache, w, &decoded);
                        assert_eq!(resp.opaque, w as u32);
                    } else {
                        match op {
                            Op::Get(k) => {
                                cache.get(w, wl.key(k));
                            }
                            Op::Set(k) => {
                                cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                            }
                            Op::Delete(k) => {
                                cache.delete(w, wl.key(k));
                            }
                            Op::Incr(k, d) => {
                                cache.arith(w, wl.key(k), d, true);
                            }
                        }
                    }
                }
                flush(&mut batch);
                flush_sets(&mut set_batch);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total_ops = args.concurrency * args.execute_number;
    let stats = cache.stats();
    let tm = cache.tm_stats();
    println!(
        "{} ops in {:.3}s = {:.0} ops/s  ({} threads, {} branch, {}, {}% reads, \
         multiget {}, setq-pipeline {}, magazine {})",
        total_ops,
        secs,
        total_ops as f64 / secs,
        args.concurrency,
        args.branch,
        if args.binary { "binary" } else { "api" },
        args.read_ratio,
        args.multiget,
        args.setq_pipeline,
        args.magazine,
    );
    println!(
        "hits={} misses={} evictions={} expansions={} rebalances={}",
        stats.threads.get_hits,
        stats.threads.get_misses,
        stats.global.evictions,
        stats.global.expansions,
        stats.global.rebalances,
    );
    println!("tm: {tm}");
}
