//! Regenerates the paper's Figure 10.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_figure("Figure 10", &bench::figures::fig10(), &scale);
}
