//! `mccrash`: the kill-at-random-commit durability harness.
//!
//! ```console
//! $ cargo run --release -p bench --bin mccrash -- --sweep 36 --seed 1
//! PASS case=00 seed=0x4ba3f1... fsync=always mode=before kill_at=9/21
//! ...
//! mccrash: 39/39 cases passed (36 kill + 3 chaos-fail)
//! ```
//!
//! Each case expands a seed into a deterministic mutation plan
//! ([`testkit::crash::CrashPlan`]), spawns a child copy of this binary
//! that executes the plan against a redo-log-enabled cache and dies —
//! via chaos injection in the log writer — at a seed-chosen append
//! index, then replays the log in the parent and compares the recovered
//! store against the pure oracle. The oracle is exact: the plan runs on
//! one worker, the writer is write-through, and `abort()` does not
//! empty the OS page cache, so the recovered state must equal
//! `simulate(plan, fatal_op)` with the fatal operation's effect present
//! iff the kill fired *after* its frame was written. Kill mode `mid`
//! must additionally leave exactly one torn record; `before`/`after`
//! leave none.
//!
//! A second arm injects persistent log-write failures (`--fail-at`)
//! instead of killing: the child must keep serving in cache-only mode,
//! and recovery must stop exactly at the failed append.
//!
//! Replay one case deterministically with
//! `mccrash --crash-seed 0x<seed> --fsync <p> --kill-mode <m>`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::Ordering;

use mcache::dur::{CHAOS_FAIL_AFTER, CHAOS_KILL_AT, CHAOS_KILL_MODE};
use mcache::{Branch, DurFsync, McCache, McConfig, McHandle, SlabConfig, Stage};
use testkit::crash::{appends_for, fatal_op, simulate, CrashOp, CrashPlan};
use testkit::rng::{mix_seed, Rng, SmallRng};

const DEFAULT_OPS: usize = 40;
const POLICIES: [DurFsync; 3] = [DurFsync::Always, DurFsync::EveryN(8), DurFsync::Off];
const MODE_NAMES: [&str; 3] = ["before", "mid", "after"];

fn start_cache(dir: &Path, fsync: DurFsync) -> McHandle {
    McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 1,
        slab: SlabConfig {
            mem_limit: 16 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.25,
        },
        hash_power: 8,
        hash_power_max: 10,
        dur_path: Some(dir.to_path_buf()),
        dur_fsync: fsync,
        ..Default::default()
    })
}

fn exec(c: &McHandle, op: &CrashOp) {
    match op {
        CrashOp::Set { key, value } => {
            c.set(0, key, value, 0, 0);
        }
        CrashOp::Delete { key } => {
            c.delete(0, key);
        }
        CrashOp::Incr { key, delta } => {
            c.arith(0, key, *delta, true);
        }
    }
}

/// The kill point for a case depends only on its seed, so a printed
/// seed is enough to replay the exact crash.
fn pick_kill_at(seed: u64, total_appends: u64) -> u64 {
    SmallRng::seed_from_u64(seed).gen_range(0..total_appends.max(1))
}

// -----------------------------------------------------------------
// Child: run the plan with the chaos triggers armed, die on schedule.

#[allow(clippy::too_many_arguments)]
fn run_child(
    dir: &Path,
    seed: u64,
    ops_n: usize,
    fsync: DurFsync,
    kill_at: Option<u64>,
    kill_mode: u64,
    fail_at: Option<u64>,
) -> ! {
    if let Some(k) = kill_at {
        CHAOS_KILL_MODE.store(kill_mode, Ordering::SeqCst);
        CHAOS_KILL_AT.store(k, Ordering::SeqCst);
    }
    if let Some(f) = fail_at {
        CHAOS_FAIL_AFTER.store(f, Ordering::SeqCst);
    }
    let plan = CrashPlan::from_seed(seed, ops_n);
    let c = start_cache(dir, fsync);
    for op in &plan.ops {
        exec(&c, op);
    }
    // Reaching here means no kill fired — legitimate only in the
    // chaos-fail arm, where the contract is: keep serving, count errors.
    if fail_at.is_some() {
        let sim = simulate(&plan.ops, plan.ops.len());
        for (k, v) in &sim {
            let got = c.get(0, k).map(|g| g.data);
            if got.as_deref() != Some(v.as_slice()) {
                eprintln!("cache-only serve check failed for key {:?}", String::from_utf8_lossy(k));
                std::process::exit(3);
            }
        }
        let errs = c.dur_stats().map_or(0, |d| d.log_write_errors);
        println!("DEGRADED log_write_errors={errs}");
    } else {
        eprintln!("child completed the plan without being killed (kill_at out of range?)");
        std::process::exit(4);
    }
    drop(c); // seals the log (a no-op once degraded)
    std::process::exit(0);
}

// -----------------------------------------------------------------
// Parent: spawn, recover, compare against the oracle.

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mccrash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create case dir");
    d
}

/// Replays the log into a fresh cache and diffs it against `sim`.
/// Returns a list of human-readable mismatches (empty = pass).
fn verify_recovery(
    dir: &Path,
    sim: &BTreeMap<Vec<u8>, Vec<u8>>,
    expect_torn: u64,
    verbose: bool,
) -> Vec<String> {
    let mut errs = Vec::new();
    let c = start_cache(dir, DurFsync::Off);
    let d = c.dur_stats().expect("dur stats present");
    if d.torn_records_dropped != expect_torn {
        errs.push(format!(
            "torn_records_dropped={} want {expect_torn}",
            d.torn_records_dropped
        ));
    }
    if d.recovered_items != sim.len() as u64 {
        errs.push(format!(
            "recovered_items={} want {}",
            d.recovered_items,
            sim.len()
        ));
    }
    let curr = c.stats().global.curr_items;
    if curr != sim.len() as u64 {
        errs.push(format!("curr_items={curr} want {}", sim.len()));
    }
    for (k, v) in sim {
        let got = c.get(0, k).map(|g| g.data);
        if got.as_deref() != Some(v.as_slice()) {
            errs.push(format!(
                "key {:?}: recovered {:?} want {:?}",
                String::from_utf8_lossy(k),
                got.as_ref().map(|g| g.len()),
                v.len()
            ));
        } else if verbose {
            println!("  ok key={:?} len={}", String::from_utf8_lossy(k), v.len());
        }
    }
    drop(c);
    errs
}

struct CaseSpec {
    label: String,
    seed: u64,
    ops_n: usize,
    fsync: DurFsync,
    kill_mode: u64,
}

/// One kill case end to end. Returns true on pass.
fn run_kill_case(exe: &Path, spec: &CaseSpec, verbose: bool) -> bool {
    let plan = CrashPlan::from_seed(spec.seed, spec.ops_n);
    let total = appends_for(&plan.ops, plan.ops.len());
    if total == 0 {
        println!("SKIP {}: plan produced no appends", spec.label);
        return true;
    }
    let kill_at = pick_kill_at(spec.seed, total);
    let dir = fresh_dir(&spec.label);
    let out = Command::new(exe)
        .args([
            "--child",
            "--dir",
            dir.to_str().unwrap(),
            "--seed",
            &spec.seed.to_string(),
            "--ops",
            &spec.ops_n.to_string(),
            "--fsync",
            &spec.fsync.to_string(),
            "--kill-at",
            &kill_at.to_string(),
            "--kill-mode",
            &spec.kill_mode.to_string(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn child");
    let mut errs = Vec::new();
    if out.status.success() {
        errs.push("child exited cleanly; expected it to die at the kill point".to_string());
    }
    // The fatal op's effect survives exactly when the kill fired after
    // its frame hit the (write-through) file.
    let fatal = fatal_op(&plan.ops, kill_at);
    let survivors = fatal + usize::from(spec.kill_mode == 2);
    let sim = simulate(&plan.ops, survivors);
    let expect_torn = u64::from(spec.kill_mode == 1);
    errs.extend(verify_recovery(&dir, &sim, expect_torn, verbose));
    let _ = std::fs::remove_dir_all(&dir);
    let line = format!(
        "{} fsync={} mode={} kill_at={kill_at}/{total} fatal_op={fatal} live={}",
        spec.label,
        spec.fsync,
        MODE_NAMES[spec.kill_mode as usize],
        sim.len()
    );
    if errs.is_empty() {
        println!("PASS {line}");
        true
    } else {
        println!("FAIL {line}");
        for e in &errs {
            println!("  {e}");
        }
        if !out.stderr.is_empty() {
            println!("  child stderr: {}", String::from_utf8_lossy(&out.stderr).trim());
        }
        println!(
            "  replay: mccrash --crash-seed {:#x} --fsync {} --kill-mode {} --ops {}",
            spec.seed, spec.fsync, spec.kill_mode, spec.ops_n
        );
        false
    }
}

/// One chaos-fail case: the child survives with a dead log; recovery
/// must stop exactly at the failed append.
fn run_fail_case(exe: &Path, label: &str, seed: u64, ops_n: usize, fsync: DurFsync) -> bool {
    let plan = CrashPlan::from_seed(seed, ops_n);
    let total = appends_for(&plan.ops, plan.ops.len());
    if total == 0 {
        println!("SKIP {label}: plan produced no appends");
        return true;
    }
    let fail_at = pick_kill_at(seed ^ 0xFA11, total);
    let dir = fresh_dir(label);
    let out = Command::new(exe)
        .args([
            "--child",
            "--dir",
            dir.to_str().unwrap(),
            "--seed",
            &seed.to_string(),
            "--ops",
            &ops_n.to_string(),
            "--fsync",
            &fsync.to_string(),
            "--fail-at",
            &fail_at.to_string(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn child");
    let mut errs = Vec::new();
    if !out.status.success() {
        errs.push(format!("child failed: {}", String::from_utf8_lossy(&out.stderr).trim()));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let degraded_ok = stdout
        .lines()
        .find_map(|l| l.strip_prefix("DEGRADED log_write_errors="))
        .and_then(|n| n.trim().parse::<u64>().ok())
        .is_some_and(|n| n > 0);
    if !degraded_ok {
        errs.push(format!("child did not report degradation: {:?}", stdout.trim()));
    }
    // Appends 0..fail_at landed; the op that would have produced append
    // `fail_at` (and everything after) was dropped on the floor.
    let sim = simulate(&plan.ops, fatal_op(&plan.ops, fail_at));
    errs.extend(verify_recovery(&dir, &sim, 0, false));
    let _ = std::fs::remove_dir_all(&dir);
    if errs.is_empty() {
        println!("PASS {label} fsync={fsync} fail_at={fail_at}/{total} live={}", sim.len());
        true
    } else {
        println!("FAIL {label} fsync={fsync} fail_at={fail_at}/{total}");
        for e in &errs {
            println!("  {e}");
        }
        false
    }
}

// -----------------------------------------------------------------
// CLI.

struct Args {
    child: bool,
    dir: Option<PathBuf>,
    seed: u64,
    crash_seed: Option<u64>,
    ops_n: usize,
    sweep: usize,
    fsync: DurFsync,
    kill_at: Option<u64>,
    kill_mode: u64,
    fail_at: Option<u64>,
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Args {
    let mut a = Args {
        child: false,
        dir: None,
        seed: 0xC0FFEE,
        crash_seed: None,
        ops_n: DEFAULT_OPS,
        sweep: 36,
        fsync: DurFsync::Always,
        kill_at: None,
        kill_mode: 1,
        fail_at: None,
    };
    let mut it = std::env::args().skip(1);
    let bad = |flag: &str| -> ! {
        eprintln!("bad or missing value for {flag}");
        std::process::exit(2);
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--child" => a.child = true,
            "--dir" => a.dir = Some(PathBuf::from(it.next().unwrap_or_else(|| bad("--dir")))),
            "--seed" => {
                a.seed = it.next().as_deref().and_then(parse_u64).unwrap_or_else(|| bad("--seed"))
            }
            "--crash-seed" => {
                a.crash_seed =
                    Some(it.next().as_deref().and_then(parse_u64).unwrap_or_else(|| {
                        bad("--crash-seed")
                    }))
            }
            "--ops" => {
                a.ops_n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad("--ops"))
            }
            "--sweep" => {
                a.sweep = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad("--sweep"))
            }
            "--fsync" => {
                a.fsync = it
                    .next()
                    .as_deref()
                    .and_then(DurFsync::parse)
                    .unwrap_or_else(|| bad("--fsync"))
            }
            "--kill-at" => {
                a.kill_at =
                    Some(it.next().as_deref().and_then(parse_u64).unwrap_or_else(|| {
                        bad("--kill-at")
                    }))
            }
            "--kill-mode" => {
                a.kill_mode = it
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .filter(|&m| m <= 2)
                    .unwrap_or_else(|| bad("--kill-mode"))
            }
            "--fail-at" => {
                a.fail_at =
                    Some(it.next().as_deref().and_then(parse_u64).unwrap_or_else(|| {
                        bad("--fail-at")
                    }))
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

fn main() {
    let a = parse_args();
    if a.child {
        let dir = a.dir.unwrap_or_else(|| {
            eprintln!("--child requires --dir");
            std::process::exit(2);
        });
        run_child(&dir, a.seed, a.ops_n, a.fsync, a.kill_at, a.kill_mode, a.fail_at);
    }
    let exe = std::env::current_exe().expect("own path");

    if let Some(seed) = a.crash_seed {
        // Deterministic single-case replay: same seed, same plan, same
        // kill point — with per-key verbosity.
        let spec = CaseSpec {
            label: format!("replay seed={seed:#x}"),
            seed,
            ops_n: a.ops_n,
            fsync: a.fsync,
            kill_mode: a.kill_mode,
        };
        std::process::exit(if run_kill_case(&exe, &spec, true) { 0 } else { 1 });
    }

    // The sweep: every (fsync policy × kill mode) combination, each
    // kill point seed-derived, plus one chaos-fail case per policy.
    let mut passed = 0usize;
    let mut failed = 0usize;
    for i in 0..a.sweep {
        let spec = CaseSpec {
            label: format!("case={i:02}"),
            seed: mix_seed(a.seed, i as u64),
            ops_n: a.ops_n,
            fsync: POLICIES[i % 3],
            kill_mode: ((i / 3) % 3) as u64,
        };
        if run_kill_case(&exe, &spec, false) {
            passed += 1;
        } else {
            failed += 1;
        }
    }
    let kill_cases = a.sweep;
    for (j, fsync) in POLICIES.iter().enumerate() {
        let ok = run_fail_case(
            &exe,
            &format!("fail={j}"),
            mix_seed(a.seed ^ 0xFA11_FA11, j as u64),
            a.ops_n,
            *fsync,
        );
        if ok {
            passed += 1;
        } else {
            failed += 1;
        }
    }
    println!(
        "mccrash: {passed}/{} cases passed ({kill_cases} kill + {} chaos-fail)",
        passed + failed,
        POLICIES.len()
    );
    std::process::exit(if failed == 0 { 0 } else { 1 });
}
