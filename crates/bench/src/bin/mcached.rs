//! `mcached`: the transactionalized cache behind a real TCP server.
//!
//! ```console
//! $ cargo run --release -p bench --bin mcached -- \
//!       --port 11311 --threads 4 --branch it-oncommit --magazine 16 \
//!       --dur-path /var/tmp/mcached.d --dur-fsync every:32
//! LISTENING 127.0.0.1:11311
//! ```
//!
//! Runs until stdin reaches EOF, a line reading `shutdown` arrives (so a
//! harness can stop it cleanly through a pipe), or `SIGTERM`/`SIGINT` is
//! delivered. All three paths drain the workers, seal the redo log (when
//! `--dur-path` is set), print the final wire counters, and exit 0.
//! `--port 0` binds an ephemeral port; the `LISTENING` line reports the
//! real one. `--udp PORT` and `--unix PATH` open the extra transports
//! (each gets its own `LISTENING-UDP` / `LISTENING-UNIX` line), and
//! `--event-loop {epoll,poll}` selects the readiness backend. Starting
//! on a `--dur-path` that already holds a log replays it before the
//! socket opens.

use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};

use mcache::net::{EventLoop, NetConfig, Server};
use mcache::{Branch, DurFsync, McCache, McConfig, Stage};

struct Args {
    host: String,
    port: u16,
    threads: usize,
    branch: Branch,
    magazine: usize,
    dur_path: Option<std::path::PathBuf>,
    dur_fsync: DurFsync,
    udp_port: Option<u16>,
    unix_path: Option<std::path::PathBuf>,
    event_loop: EventLoop,
    idle_timeout_ms: u64,
}

fn parse_branch(name: &str) -> Option<Branch> {
    Some(match name {
        "baseline" => Branch::Baseline,
        "semaphore" => Branch::Semaphore,
        "ip" => Branch::Ip(Stage::Plain),
        "it" => Branch::It(Stage::Plain),
        "ip-max" => Branch::Ip(Stage::Max),
        "it-max" => Branch::It(Stage::Max),
        "ip-lib" => Branch::Ip(Stage::Lib),
        "it-lib" => Branch::It(Stage::Lib),
        "ip-oncommit" => Branch::Ip(Stage::OnCommit),
        "it-oncommit" => Branch::It(Stage::OnCommit),
        "ip-nolock" => Branch::IpNoLock,
        "it-nolock" => Branch::ItNoLock,
        _ => return None,
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        host: "127.0.0.1".to_string(),
        port: 11311,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        branch: Branch::IpNoLock,
        magazine: 0,
        dur_path: None,
        dur_fsync: DurFsync::EveryN(32),
        udp_port: None,
        unix_path: None,
        event_loop: EventLoop::default(),
        idle_timeout_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| {
            it.next().and_then(|v| v.parse::<usize>().ok())
        };
        match flag.as_str() {
            "--host" => {
                if let Some(h) = it.next() {
                    args.host = h;
                }
            }
            "--port" | "-p" => {
                if let Some(v) = num(&mut it) {
                    args.port = v as u16;
                }
            }
            "--threads" | "-t" => {
                if let Some(v) = num(&mut it) {
                    args.threads = v.max(1);
                }
            }
            "--magazine" => {
                if let Some(v) = num(&mut it) {
                    args.magazine = v;
                }
            }
            "--branch" => {
                if let Some(b) = it.next().as_deref().and_then(parse_branch) {
                    args.branch = b;
                } else {
                    eprintln!("unknown branch; see examples/cache_server.rs for names");
                    std::process::exit(2);
                }
            }
            "--dur-path" => {
                if let Some(p) = it.next() {
                    args.dur_path = Some(std::path::PathBuf::from(p));
                } else {
                    eprintln!("--dur-path needs a directory");
                    std::process::exit(2);
                }
            }
            "--udp" | "-U" => {
                if let Some(v) = num(&mut it) {
                    args.udp_port = Some(v as u16);
                } else {
                    eprintln!("--udp needs a port (0 = ephemeral)");
                    std::process::exit(2);
                }
            }
            "--unix" | "-s" => {
                if let Some(p) = it.next() {
                    args.unix_path = Some(std::path::PathBuf::from(p));
                } else {
                    eprintln!("--unix needs a socket path");
                    std::process::exit(2);
                }
            }
            "--event-loop" => {
                if let Some(b) = it.next().as_deref().and_then(|s| s.parse().ok()) {
                    args.event_loop = b;
                } else {
                    eprintln!("--event-loop takes epoll | poll");
                    std::process::exit(2);
                }
            }
            "--idle-timeout-ms" => {
                if let Some(v) = num(&mut it) {
                    args.idle_timeout_ms = v as u64;
                }
            }
            "--dur-fsync" => {
                if let Some(f) = it.next().as_deref().and_then(DurFsync::parse) {
                    args.dur_fsync = f;
                } else {
                    eprintln!("--dur-fsync takes always | every:N | off");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Set by the signal handler; polled by the main loop. A relaxed store
/// on a static `AtomicBool` is async-signal-safe.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGINT and SIGTERM through the raw
/// `signal(2)` symbol — the workspace is hermetic (no `libc` crate), and
/// these two constants are identical across the platforms we target.
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

fn main() {
    let args = parse_args();
    install_signal_handlers();
    let handle = McCache::start(McConfig {
        branch: args.branch,
        workers: args.threads,
        magazine: args.magazine,
        dur_path: args.dur_path,
        dur_fsync: args.dur_fsync,
        ..Default::default()
    });
    if let Some(d) = handle.dur_stats() {
        println!(
            "RECOVERED items={} torn_records_dropped={}",
            d.recovered_items, d.torn_records_dropped
        );
    }
    let mut server = Server::start(
        handle,
        NetConfig {
            addr: format!("{}:{}", args.host, args.port),
            workers: args.threads,
            event_loop: args.event_loop,
            udp_addr: args.udp_port.map(|p| format!("{}:{}", args.host, p)),
            unix_path: args.unix_path,
            idle_timeout_ms: args.idle_timeout_ms,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("bind failed: {e}");
        std::process::exit(1);
    });
    // The harness contract: one LISTENING line per bound transport, then
    // serve until the pipe or a signal says stop.
    println!("LISTENING {}", server.local_addr());
    if let Some(u) = server.udp_addr() {
        println!("LISTENING-UDP {u}");
    }
    if let Some(p) = server.unix_path() {
        println!("LISTENING-UNIX {}", p.display());
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Stdin lives on its own thread so the main loop can also watch the
    // signal flag; `read_line` can't be interrupted portably.
    std::thread::spawn(|| {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) if l.trim() == "shutdown" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        STOP.store(true, Ordering::Relaxed);
    });
    while !STOP.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    // Graceful teardown: stop accepting, drain in-flight connections,
    // then seal the redo log so the next start skips the torn-tail scan.
    server.shutdown();
    server.cache().shutdown();
    let ns = server.net_stats();
    let s = server.cache().stats();
    println!(
        "shutdown: total_connections={} curr_connections={} bytes_read={} bytes_written={} \
         frame_errors={} accept_errors={} conn_timeouts={} cmd_get={} cmd_set={} \
         request_panics={}",
        ns.total_connections,
        ns.curr_connections,
        ns.bytes_read,
        ns.bytes_written,
        ns.frame_errors,
        ns.accept_errors,
        ns.conn_timeouts,
        s.threads.get_cmds,
        s.threads.set_cmds,
        s.request_panics,
    );
    if let Some(d) = server.cache().dur_stats() {
        println!(
            "durability: dur_appends={} dur_fsyncs={} dur_bytes={} log_write_errors={}",
            d.appends, d.fsyncs, d.bytes, d.log_write_errors
        );
    }
}
