//! `mcached`: the transactionalized cache behind a real TCP server.
//!
//! ```console
//! $ cargo run --release -p bench --bin mcached -- \
//!       --port 11311 --threads 4 --branch it-oncommit --magazine 16
//! LISTENING 127.0.0.1:11311
//! ```
//!
//! Runs until stdin reaches EOF or a line reading `shutdown` arrives
//! (so a harness can stop it cleanly through a pipe), then drains the
//! workers, prints the final wire counters, and exits 0. `--port 0`
//! binds an ephemeral port; the `LISTENING` line reports the real one.

use std::io::BufRead;

use mcache::net::{NetConfig, Server};
use mcache::{Branch, McCache, McConfig, Stage};

struct Args {
    host: String,
    port: u16,
    threads: usize,
    branch: Branch,
    magazine: usize,
}

fn parse_branch(name: &str) -> Option<Branch> {
    Some(match name {
        "baseline" => Branch::Baseline,
        "semaphore" => Branch::Semaphore,
        "ip" => Branch::Ip(Stage::Plain),
        "it" => Branch::It(Stage::Plain),
        "ip-max" => Branch::Ip(Stage::Max),
        "it-max" => Branch::It(Stage::Max),
        "ip-lib" => Branch::Ip(Stage::Lib),
        "it-lib" => Branch::It(Stage::Lib),
        "ip-oncommit" => Branch::Ip(Stage::OnCommit),
        "it-oncommit" => Branch::It(Stage::OnCommit),
        "ip-nolock" => Branch::IpNoLock,
        "it-nolock" => Branch::ItNoLock,
        _ => return None,
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        host: "127.0.0.1".to_string(),
        port: 11311,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        branch: Branch::IpNoLock,
        magazine: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| {
            it.next().and_then(|v| v.parse::<usize>().ok())
        };
        match flag.as_str() {
            "--host" => {
                if let Some(h) = it.next() {
                    args.host = h;
                }
            }
            "--port" | "-p" => {
                if let Some(v) = num(&mut it) {
                    args.port = v as u16;
                }
            }
            "--threads" | "-t" => {
                if let Some(v) = num(&mut it) {
                    args.threads = v.max(1);
                }
            }
            "--magazine" => {
                if let Some(v) = num(&mut it) {
                    args.magazine = v;
                }
            }
            "--branch" => {
                if let Some(b) = it.next().as_deref().and_then(parse_branch) {
                    args.branch = b;
                } else {
                    eprintln!("unknown branch; see examples/cache_server.rs for names");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let handle = McCache::start(McConfig {
        branch: args.branch,
        workers: args.threads,
        magazine: args.magazine,
        ..Default::default()
    });
    let mut server = Server::start(
        handle,
        NetConfig {
            addr: format!("{}:{}", args.host, args.port),
            workers: args.threads,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("bind failed: {e}");
        std::process::exit(1);
    });
    // The harness contract: one line, then serve until the pipe says stop.
    println!("LISTENING {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "shutdown" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    server.shutdown();
    let ns = server.net_stats();
    let s = server.cache().stats();
    println!(
        "shutdown: total_connections={} curr_connections={} bytes_read={} bytes_written={} \
         frame_errors={} cmd_get={} cmd_set={} request_panics={}",
        ns.total_connections,
        ns.curr_connections,
        ns.bytes_read,
        ns.bytes_written,
        ns.frame_errors,
        s.threads.get_cmds,
        s.threads.set_cmds,
        s.request_panics,
    );
}
