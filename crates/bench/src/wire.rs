//! A minimal blocking memcached wire client for loopback load
//! generation and tests: mcslap's `--tcp`/`--unix`/`--udp` modes, the
//! `stm_wirepath`/`stm_netpath` benches, and the conformance suites
//! drive [`mcache::net::Server`] through real sockets with this.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, UdpSocket};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use mcache::net::udp::{decode_header, encode_header, UDP_HEADER};
use mcache::proto::binary::{Request, Response};

/// The client end of a stream transport: TCP or Unix-domain.
enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.write_all(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write_all(buf),
        }
    }
}

/// One blocking client connection with a response reassembly buffer.
pub struct WireConn {
    stream: ClientStream,
    rbuf: Vec<u8>,
    rpos: usize,
}

/// One ASCII `VALUE` block from a get response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsciiValue {
    /// The key as echoed on the `VALUE` line.
    pub key: Vec<u8>,
    /// Client flags.
    pub flags: u32,
    /// CAS id (`gets` only; 0 for `get`).
    pub cas: u64,
    /// The data block.
    pub data: Vec<u8>,
}

impl WireConn {
    /// Connects over TCP (blocking, `TCP_NODELAY`).
    pub fn connect(addr: &str) -> io::Result<WireConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WireConn {
            stream: ClientStream::Tcp(stream),
            rbuf: Vec::new(),
            rpos: 0,
        })
    }

    /// Connects over a Unix-domain socket. The protocol on the wire is
    /// byte-identical to TCP, so every method works unchanged.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> io::Result<WireConn> {
        let stream = UnixStream::connect(path)?;
        Ok(WireConn {
            stream: ClientStream::Unix(stream),
            rbuf: Vec::new(),
            rpos: 0,
        })
    }

    /// Sends raw bytes.
    pub fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    fn fill(&mut self) -> io::Result<()> {
        if self.rpos > 0 && self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        }
        let mut chunk = [0u8; 16 << 10];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        self.rbuf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Reads one CRLF-terminated line (CRLF stripped).
    pub fn read_line(&mut self) -> io::Result<Vec<u8>> {
        loop {
            let avail = &self.rbuf[self.rpos..];
            if let Some(i) = avail.windows(2).position(|w| w == b"\r\n") {
                let line = avail[..i].to_vec();
                self.rpos += i + 2;
                return Ok(line);
            }
            self.fill()?;
        }
    }

    /// Reads exactly `n` bytes.
    pub fn read_exact_bytes(&mut self, n: usize) -> io::Result<Vec<u8>> {
        while self.rbuf.len() - self.rpos < n {
            self.fill()?;
        }
        let out = self.rbuf[self.rpos..self.rpos + n].to_vec();
        self.rpos += n;
        Ok(out)
    }

    /// Sends an ASCII request expecting a single-line response and
    /// returns that line (CRLF stripped): storage commands, `delete`,
    /// `incr`/`decr`, `touch`, `version`, errors.
    pub fn ascii_line(&mut self, request: &[u8]) -> io::Result<Vec<u8>> {
        self.send(request)?;
        self.read_line()
    }

    /// Sends `get`/`gets` for `keys` and parses the `VALUE` blocks up
    /// to the terminating `END`.
    pub fn ascii_get(&mut self, keys: &[&[u8]], with_cas: bool) -> io::Result<Vec<AsciiValue>> {
        let mut req: Vec<u8> = if with_cas { b"gets".to_vec() } else { b"get".to_vec() };
        for k in keys {
            req.push(b' ');
            req.extend_from_slice(k);
        }
        req.extend_from_slice(b"\r\n");
        self.send(&req)?;
        self.read_values()
    }

    /// Parses `VALUE` blocks up to the terminating `END` (the response
    /// to an already-sent get).
    pub fn read_values(&mut self) -> io::Result<Vec<AsciiValue>> {
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == b"END" {
                return Ok(out);
            }
            match parse_value_line(&line) {
                Some((key, flags, len, cas)) => {
                    let data = self.read_exact_bytes(len)?;
                    let crlf = self.read_exact_bytes(2)?;
                    if crlf != b"\r\n" {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "missing data CRLF",
                        ));
                    }
                    out.push(AsciiValue { key, flags, cas, data });
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "unexpected get response line: {:?}",
                            String::from_utf8_lossy(&line)
                        ),
                    ))
                }
            }
        }
    }

    /// Sends `stats` and returns the `(name, value)` pairs.
    pub fn ascii_stats(&mut self) -> io::Result<Vec<(String, u64)>> {
        self.send(b"stats\r\n")?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == b"END" {
                return Ok(out);
            }
            let text = String::from_utf8_lossy(&line);
            let mut parts = text.split_whitespace();
            if let (Some("STAT"), Some(k), Some(v)) = (parts.next(), parts.next(), parts.next()) {
                out.push((k.to_string(), v.parse().map_err(bad_data)?));
            }
        }
    }

    /// Reads one binary response frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        loop {
            if let Some((resp, used)) = Response::decode(&self.rbuf[self.rpos..]) {
                self.rpos += used;
                return Ok(resp);
            }
            self.fill()?;
        }
    }

    /// Sends one non-quiet binary request and reads its response.
    pub fn binary_roundtrip(&mut self, req: &Request) -> io::Result<Response> {
        self.send(&req.encode())?;
        self.read_response()
    }

    /// Sends a pipelined burst of binary requests as ONE write and
    /// reads responses until the sentinel — the response echoing
    /// `stop_opaque` (a trailing `Noop` per the quiet-op idiom).
    /// Returns every response up to and including the sentinel.
    pub fn binary_pipeline(
        &mut self,
        reqs: &[Request],
        stop_opaque: u32,
    ) -> io::Result<Vec<Response>> {
        let mut wire = Vec::new();
        for r in reqs {
            wire.extend_from_slice(&r.encode());
        }
        self.send(&wire)?;
        let mut out = Vec::new();
        loop {
            let resp = self.read_response()?;
            let done = resp.opaque == stop_opaque;
            out.push(resp);
            if done {
                return Ok(out);
            }
        }
    }
}

/// Parses one `VALUE <key> <flags> <len> [cas]` line.
fn parse_value_line(line: &[u8]) -> Option<(Vec<u8>, u32, usize, u64)> {
    let text = String::from_utf8_lossy(line);
    let mut parts = text.split_whitespace();
    let (Some("VALUE"), Some(key), Some(flags), Some(len)) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return None;
    };
    let flags: u32 = flags.parse().ok()?;
    let len: usize = len.parse().ok()?;
    let cas: u64 = match parts.next() {
        Some(c) => c.parse().ok()?,
        None => 0,
    };
    Some((key.as_bytes().to_vec(), flags, len, cas))
}

fn bad_data<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

// ---------------------------------------------------------------------
// UDP client
// ---------------------------------------------------------------------

/// A blocking UDP client speaking memcached's 8-byte UDP frame
/// protocol, with multi-datagram response reassembly that tolerates
/// out-of-order arrival across interleaved request ids.
pub struct UdpClient {
    sock: UdpSocket,
    next_rid: u16,
    /// Partially reassembled responses, keyed by request id:
    /// `(received_count, per-seq slots)`.
    partial: HashMap<u16, (usize, Vec<Option<Vec<u8>>>)>,
    /// Fully reassembled responses not yet handed out.
    ready: HashMap<u16, Vec<u8>>,
}

impl UdpClient {
    /// Binds an ephemeral local port and connects it to the server.
    pub fn connect(addr: &str) -> io::Result<UdpClient> {
        let sock = UdpSocket::bind("0.0.0.0:0")?;
        sock.connect(addr)?;
        sock.set_read_timeout(Some(Duration::from_secs(5)))?;
        Ok(UdpClient {
            sock,
            next_rid: 1,
            partial: HashMap::new(),
            ready: HashMap::new(),
        })
    }

    /// Sets the receive timeout (reassembly gives up with `TimedOut`).
    pub fn set_timeout(&self, d: Duration) -> io::Result<()> {
        self.sock.set_read_timeout(Some(d))
    }

    /// Sends one request datagram (`seq=0 total=1`) under a fresh
    /// request id and returns that id.
    pub fn send_request(&mut self, payload: &[u8]) -> io::Result<u16> {
        let rid = self.next_rid;
        self.next_rid = self.next_rid.wrapping_add(1).max(1);
        self.send_request_rid(rid, payload)?;
        Ok(rid)
    }

    /// Sends one request datagram under an explicit request id (the
    /// out-of-order conformance tests pick their own).
    pub fn send_request_rid(&mut self, rid: u16, payload: &[u8]) -> io::Result<()> {
        let mut wire = Vec::with_capacity(UDP_HEADER + payload.len());
        wire.extend_from_slice(&encode_header(rid, 0, 1));
        wire.extend_from_slice(payload);
        self.sock.send(&wire)?;
        Ok(())
    }

    /// Receives datagrams until the response for `rid` is fully
    /// reassembled, buffering completed responses for other in-flight
    /// request ids along the way.
    pub fn recv_response(&mut self, rid: u16) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; 64 << 10];
        loop {
            if let Some(full) = self.ready.remove(&rid) {
                return Ok(full);
            }
            let n = self.sock.recv(&mut buf)?;
            let Some((got_rid, seq, total)) = decode_header(&buf[..n]) else {
                continue; // runt datagram; UDP is lossy, keep waiting
            };
            if total == 0 || seq >= total {
                continue;
            }
            let (count, slots) = self
                .partial
                .entry(got_rid)
                .or_insert_with(|| (0, vec![None; total as usize]));
            if slots.len() != total as usize || slots[seq as usize].is_some() {
                continue; // header disagreement or duplicate: drop
            }
            slots[seq as usize] = Some(buf[UDP_HEADER..n].to_vec());
            *count += 1;
            if *count == slots.len() {
                let (_, slots) = self.partial.remove(&got_rid).expect("just inserted");
                let mut full = Vec::new();
                for s in slots {
                    full.extend_from_slice(&s.expect("all slots filled"));
                }
                self.ready.insert(got_rid, full);
            }
        }
    }

    /// One full roundtrip: send `payload`, reassemble the response.
    pub fn roundtrip(&mut self, payload: &[u8]) -> io::Result<Vec<u8>> {
        let rid = self.send_request(payload)?;
        self.recv_response(rid)
    }
}
