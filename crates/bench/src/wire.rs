//! A minimal blocking memcached wire client for loopback load
//! generation and tests: mcslap's `--tcp` mode, the `stm_wirepath`
//! bench, and the conformance suites drive [`mcache::net::Server`]
//! through real sockets with this.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use mcache::proto::binary::{Request, Response};

/// One blocking client connection with a response reassembly buffer.
pub struct WireConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rpos: usize,
}

/// One ASCII `VALUE` block from a get response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsciiValue {
    /// The key as echoed on the `VALUE` line.
    pub key: Vec<u8>,
    /// Client flags.
    pub flags: u32,
    /// CAS id (`gets` only; 0 for `get`).
    pub cas: u64,
    /// The data block.
    pub data: Vec<u8>,
}

impl WireConn {
    /// Connects (blocking, `TCP_NODELAY`).
    pub fn connect(addr: &str) -> io::Result<WireConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WireConn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
        })
    }

    /// Sends raw bytes.
    pub fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    fn fill(&mut self) -> io::Result<()> {
        if self.rpos > 0 && self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        }
        let mut chunk = [0u8; 16 << 10];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        self.rbuf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Reads one CRLF-terminated line (CRLF stripped).
    pub fn read_line(&mut self) -> io::Result<Vec<u8>> {
        loop {
            let avail = &self.rbuf[self.rpos..];
            if let Some(i) = avail.windows(2).position(|w| w == b"\r\n") {
                let line = avail[..i].to_vec();
                self.rpos += i + 2;
                return Ok(line);
            }
            self.fill()?;
        }
    }

    /// Reads exactly `n` bytes.
    pub fn read_exact_bytes(&mut self, n: usize) -> io::Result<Vec<u8>> {
        while self.rbuf.len() - self.rpos < n {
            self.fill()?;
        }
        let out = self.rbuf[self.rpos..self.rpos + n].to_vec();
        self.rpos += n;
        Ok(out)
    }

    /// Sends an ASCII request expecting a single-line response and
    /// returns that line (CRLF stripped): storage commands, `delete`,
    /// `incr`/`decr`, `touch`, `version`, errors.
    pub fn ascii_line(&mut self, request: &[u8]) -> io::Result<Vec<u8>> {
        self.send(request)?;
        self.read_line()
    }

    /// Sends `get`/`gets` for `keys` and parses the `VALUE` blocks up
    /// to the terminating `END`.
    pub fn ascii_get(&mut self, keys: &[&[u8]], with_cas: bool) -> io::Result<Vec<AsciiValue>> {
        let mut req: Vec<u8> = if with_cas { b"gets".to_vec() } else { b"get".to_vec() };
        for k in keys {
            req.push(b' ');
            req.extend_from_slice(k);
        }
        req.extend_from_slice(b"\r\n");
        self.send(&req)?;
        self.read_values()
    }

    /// Parses `VALUE` blocks up to the terminating `END` (the response
    /// to an already-sent get).
    pub fn read_values(&mut self) -> io::Result<Vec<AsciiValue>> {
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == b"END" {
                return Ok(out);
            }
            let text = String::from_utf8_lossy(&line);
            let mut parts = text.split_whitespace();
            let (Some("VALUE"), Some(key), Some(flags), Some(len)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected get response line: {text:?}"),
                ));
            };
            let flags: u32 = flags.parse().map_err(bad_data)?;
            let len: usize = len.parse().map_err(bad_data)?;
            let cas: u64 = match parts.next() {
                Some(c) => c.parse().map_err(bad_data)?,
                None => 0,
            };
            let data = self.read_exact_bytes(len)?;
            let crlf = self.read_exact_bytes(2)?;
            if crlf != b"\r\n" {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "missing data CRLF"));
            }
            out.push(AsciiValue {
                key: key.as_bytes().to_vec(),
                flags,
                cas,
                data,
            });
        }
    }

    /// Sends `stats` and returns the `(name, value)` pairs.
    pub fn ascii_stats(&mut self) -> io::Result<Vec<(String, u64)>> {
        self.send(b"stats\r\n")?;
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == b"END" {
                return Ok(out);
            }
            let text = String::from_utf8_lossy(&line);
            let mut parts = text.split_whitespace();
            if let (Some("STAT"), Some(k), Some(v)) = (parts.next(), parts.next(), parts.next()) {
                out.push((k.to_string(), v.parse().map_err(bad_data)?));
            }
        }
    }

    /// Reads one binary response frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        loop {
            if let Some((resp, used)) = Response::decode(&self.rbuf[self.rpos..]) {
                self.rpos += used;
                return Ok(resp);
            }
            self.fill()?;
        }
    }

    /// Sends one non-quiet binary request and reads its response.
    pub fn binary_roundtrip(&mut self, req: &Request) -> io::Result<Response> {
        self.send(&req.encode())?;
        self.read_response()
    }

    /// Sends a pipelined burst of binary requests as ONE write and
    /// reads responses until the sentinel — the response echoing
    /// `stop_opaque` (a trailing `Noop` per the quiet-op idiom).
    /// Returns every response up to and including the sentinel.
    pub fn binary_pipeline(
        &mut self,
        reqs: &[Request],
        stop_opaque: u32,
    ) -> io::Result<Vec<Response>> {
        let mut wire = Vec::new();
        for r in reqs {
            wire.extend_from_slice(&r.encode());
        }
        self.send(&wire)?;
        let mut out = Vec::new();
        loop {
            let resp = self.read_response()?;
            let done = resp.opaque == stop_opaque;
            out.push(resp);
            if done {
                return Ok(out);
            }
        }
    }
}

fn bad_data<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}
