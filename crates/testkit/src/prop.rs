//! A minimal property-testing engine: seeded case generation, a
//! `proptest!`-style macro, and greedy value-based shrinking.
//!
//! Each test case is generated from a *case seed* derived from the base
//! seed and the case index, so any failure is replayable in isolation:
//!
//! ```text
//! [testkit] property 'parse_roundtrip' failed (case 17, seed 0x3a91...)
//!           replay: TESTKIT_REPLAY=0x3a91... cargo test parse_roundtrip
//! ```
//!
//! Environment knobs:
//!
//! | var | meaning |
//! |---|---|
//! | `TESTKIT_SEED` | base seed for every property (decimal or 0x-hex) |
//! | `TESTKIT_CASES` | cases per property (overrides the per-test config) |
//! | `TESTKIT_REPLAY` | run exactly one case from this case seed |
//!
//! Unlike `proptest`, shrinking is *value-based*: the generated value
//! implements [`Shrink`], which proposes strictly-simpler candidates; the
//! runner greedily walks to a local minimum. Local types opt out with
//! [`crate::no_shrink!`] or implement [`Shrink`] by hand.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{mix_seed, SmallRng};

/// Why a property rejected a case.
#[derive(Clone, Debug)]
pub struct CaseError {
    message: String,
}

impl CaseError {
    /// Creates an error carrying `message`.
    pub fn new(message: impl Into<String>) -> Self {
        CaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// What a property body returns: `Ok(())` to accept the case.
pub type CaseResult = Result<(), CaseError>;

/// Runner configuration. Start from [`Config::from_env`] (the `proptest!`
/// macro does) so the environment knobs work everywhere.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; case `i` runs from `mix_seed(seed, i)`.
    pub seed: u64,
    /// If set, run exactly one case from this case seed.
    pub replay: Option<u64>,
    /// Cap on property evaluations spent shrinking a failure.
    pub max_shrink_iters: u32,
}

/// Default base seed ("test-kit"); fixed so hermetic runs are
/// reproducible run-to-run.
pub const DEFAULT_SEED: u64 = 0x7E57_4B17_D00D_FEED;

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: DEFAULT_SEED,
            replay: None,
            max_shrink_iters: 4096,
        }
    }
}

impl Config {
    /// The default configuration with the environment overrides applied.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(s) = parse_env_u64("TESTKIT_SEED") {
            cfg.seed = s;
        }
        if let Some(c) = parse_env_u64("TESTKIT_CASES") {
            cfg.cases = c.min(u32::MAX as u64) as u32;
        }
        cfg.replay = parse_env_u64("TESTKIT_REPLAY");
        cfg
    }

    /// Overrides the case count (the `#![cases(n)]` macro header).
    /// `TESTKIT_CASES` still wins if set.
    pub fn with_cases(mut self, cases: u32) -> Self {
        if std::env::var_os("TESTKIT_CASES").is_none() {
            self.cases = cases;
        }
        self
    }
}

fn parse_env_u64(key: &str) -> Option<u64> {
    let v = std::env::var(key).ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    match parsed {
        Ok(n) => Some(n),
        Err(_) => panic!("[testkit] could not parse {key}={v:?} as a u64"),
    }
}

/// Proposes strictly-simpler variants of a failing value. An empty vector
/// (the default) means the value is already minimal.
pub trait Shrink: Sized {
    /// Candidate simplifications, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v.saturating_sub(1)] {
                    if c != v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )+};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_int {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v - v.signum()] {
                    if c != v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )+};
}
impl_shrink_int!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Structure first: drop everything, halves, then single elements.
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        for i in 0..n.min(24) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Then content: shrink each element in place (bounded fan-out).
        for i in 0..n.min(12) {
            for candidate in self[i].shrink().into_iter().take(2) {
                let mut v = self.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident/$idx:tt),+),)+) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = candidate;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}

impl_shrink_tuple! {
    (A/0),
    (A/0, B/1),
    (A/0, B/1, C/2),
    (A/0, B/1, C/2, D/3),
    (A/0, B/1, C/2, D/3, E/4),
    (A/0, B/1, C/2, D/3, E/4, F/5),
}

/// Declares that the listed local types have no shrink candidates.
#[macro_export]
macro_rules! no_shrink {
    ($($t:ty),+ $(,)?) => {$(
        impl $crate::prop::Shrink for $t {}
    )+};
}

fn run_one<T, F>(prop: &F, value: &T) -> CaseResult
where
    F: Fn(&T) -> CaseResult,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_owned());
            Err(CaseError::new(format!("panicked: {msg}")))
        }
    }
}

/// Runs `cases` random cases of `prop` over values drawn by `gen`,
/// shrinking and reporting the first failure.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when a case fails, with the
/// minimal value found, the case seed, and one-line replay instructions.
pub fn check<T, G, F>(name: &str, cfg: Config, gen: G, prop: F)
where
    T: Clone + fmt::Debug + Shrink,
    G: Fn(&mut SmallRng) -> T,
    F: Fn(&T) -> CaseResult,
{
    if let Some(case_seed) = cfg.replay {
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let value = gen(&mut rng);
        if let Err(e) = run_one(&prop, &value) {
            fail(name, "replay", case_seed, &value, &e, 0);
        }
        return;
    }
    for case in 0..cfg.cases {
        let case_seed = mix_seed(cfg.seed, case as u64);
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let value = gen(&mut rng);
        if let Err(first) = run_one(&prop, &value) {
            // Greedy descent: take the first failing candidate, repeat.
            let mut cur = value;
            let mut cur_err = first;
            let mut evals = 0u32;
            let mut steps = 0u32;
            'minimize: loop {
                for candidate in cur.shrink() {
                    if evals >= cfg.max_shrink_iters {
                        break 'minimize;
                    }
                    evals += 1;
                    if let Err(e) = run_one(&prop, &candidate) {
                        cur = candidate;
                        cur_err = e;
                        steps += 1;
                        continue 'minimize;
                    }
                }
                break;
            }
            fail(name, &format!("case {case}"), case_seed, &cur, &cur_err, steps);
        }
    }
}

fn fail<T: fmt::Debug>(
    name: &str,
    which: &str,
    case_seed: u64,
    value: &T,
    err: &CaseError,
    shrink_steps: u32,
) -> ! {
    panic!(
        "\n[testkit] property '{name}' failed ({which}, seed {case_seed:#018x})\n\
         [testkit] minimal failing input (after {shrink_steps} shrink steps):\n\
         {value:#?}\n\
         [testkit] error: {err}\n\
         [testkit] replay: TESTKIT_REPLAY={case_seed:#x} cargo test {name}\n"
    );
}

/// Generator combinators. A generator is any `Fn(&mut SmallRng) -> T`;
/// these helpers build the common ones.
pub mod gen {
    use crate::rng::{Rng, SampleUniform, SmallRng};
    use std::ops::Range;

    /// Uniform draw from a half-open integer range.
    pub fn range<T: SampleUniform>(r: Range<T>) -> impl Fn(&mut SmallRng) -> T + Clone {
        move |rng| rng.gen_range(r.clone())
    }

    macro_rules! any_fns {
        ($($fn_name:ident -> $t:ty),+ $(,)?) => {$(
            /// Uniform draw over the whole type.
            pub fn $fn_name() -> impl Fn(&mut SmallRng) -> $t + Clone {
                |rng| rng.next_u64() as $t
            }
        )+};
    }
    any_fns! {
        any_u8 -> u8, any_u16 -> u16, any_u32 -> u32, any_u64 -> u64,
        any_usize -> usize, any_i64 -> i64,
    }

    /// Uniform `bool`.
    pub fn any_bool() -> impl Fn(&mut SmallRng) -> bool + Clone {
        |rng| rng.next_u64() & 1 == 1
    }

    /// A vector of `elem` draws with a length drawn from `len`.
    pub fn vec<T, G>(elem: G, len: Range<usize>) -> impl Fn(&mut SmallRng) -> Vec<T> + Clone
    where
        G: Fn(&mut SmallRng) -> T + Clone,
    {
        move |rng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| elem(rng)).collect()
        }
    }

    /// Arbitrary bytes with a length drawn from `len`.
    pub fn bytes(len: Range<usize>) -> impl Fn(&mut SmallRng) -> Vec<u8> + Clone {
        vec(any_u8(), len)
    }

    /// Always `value` (the `Just` arm of a [`crate::one_of!`]).
    pub fn just<T: Clone>(value: T) -> impl Fn(&mut SmallRng) -> T + Clone {
        move |_| value.clone()
    }

    /// A length-agnostic position, resolved against a concrete length at
    /// use time (the shape of `proptest`'s `sample::Index`).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(pub u64);

    impl Index {
        /// This position within a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl crate::prop::Shrink for Index {
        fn shrink(&self) -> Vec<Self> {
            self.0.shrink().into_iter().map(Index).collect()
        }
    }

    /// Draws an [`Index`].
    pub fn index() -> impl Fn(&mut SmallRng) -> Index + Clone {
        |rng| Index(rng.next_u64())
    }
}

/// Picks one of several generators uniformly (the `prop_oneof!` shape).
/// Every arm must yield the same type.
#[macro_export]
macro_rules! one_of {
    ($($g:expr),+ $(,)?) => {{
        move |rng: &mut $crate::rng::SmallRng| {
            let n = [$(stringify!($g)),+].len() as u64;
            let k = $crate::rng::Rng::gen_range(rng, 0..n);
            let mut i = 0u64;
            $(
                if k == i {
                    return ($g)(rng);
                }
                i += 1;
            )+
            let _ = i;
            unreachable!()
        }
    }};
}

/// Property assertion: reject the case with a message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::prop::CaseError::new(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseError::new(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::prop::CaseError::new(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::prop::CaseError::new(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::prop::CaseError::new(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Skips the case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Declares property tests over named generators, in the shape of
/// `proptest!`:
///
/// ```
/// use testkit::{prop_assert_eq, proptest};
/// use testkit::prop::gen;
///
/// proptest! {
///     #![cases(64)]
///
///     #[test]
///     fn reverse_twice_is_identity(v in gen::vec(gen::any_u8(), 0..32)) {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         prop_assert_eq!(v, w);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![cases($cases:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::prop::Config::from_env().with_cases($cases)) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::prop::Config::from_env()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __gen = |__rng: &mut $crate::rng::SmallRng| ( $(($gen)(__rng),)+ );
            $crate::prop::check(stringify!($name), $cfg, __gen, |__case| {
                #[allow(unused_parens, unused_mut)]
                let ( $(mut $arg,)+ ) = ::std::clone::Clone::clone(__case);
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::gen;
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config {
            cases: 50,
            seed: 1,
            replay: None,
            max_shrink_iters: 100,
        };
        let counter = std::cell::Cell::new(0u32);
        check(
            "count_cases",
            cfg,
            |rng: &mut SmallRng| {
                counter.set(counter.get() + 1);
                gen::any_u64()(rng)
            },
            |_| Ok(()),
        );
        assert_eq!(counter.get(), 50);
    }

    #[test]
    fn failure_shrinks_to_minimum() {
        // Property: every vec sums below 100. Minimal counterexample is a
        // single element >= 100, shrunk toward 100.
        let cfg = Config {
            cases: 200,
            seed: 2,
            replay: None,
            max_shrink_iters: 4096,
        };
        let result = std::panic::catch_unwind(|| {
            check(
                "sum_below_100",
                cfg,
                gen::vec(gen::range(0u64..1000), 0..20),
                |v| {
                    prop_assert!(v.iter().sum::<u64>() < 100);
                    Ok(())
                },
            );
        });
        let msg = match result {
            Err(p) => *p.downcast::<String>().expect("panic message"),
            Ok(()) => panic!("property must fail"),
        };
        assert!(msg.contains("sum_below_100"), "{msg}");
        assert!(msg.contains("TESTKIT_REPLAY="), "{msg}");
        // Greedy shrinking over [0,1000) elements lands on one element in
        // the low hundreds; assert the structure, not the exact value.
        let shrunk_len = msg
            .lines()
            .filter(|l| l.trim().chars().all(|c| c.is_ascii_digit() || c == ','))
            .count();
        assert!(shrunk_len <= 3, "shrunk vec should be tiny: {msg}");
    }

    #[test]
    fn panics_are_caught_and_reported() {
        let cfg = Config {
            cases: 10,
            seed: 3,
            replay: None,
            max_shrink_iters: 10,
        };
        let result = std::panic::catch_unwind(|| {
            check("panicky", cfg, gen::any_u64(), |_| -> CaseResult {
                panic!("boom inside property");
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("boom inside property"), "{msg}");
    }

    #[test]
    fn replay_reproduces_the_same_value() {
        let seed = 0xDEAD_BEEF;
        let draw = |case_seed: u64| {
            let mut rng = SmallRng::seed_from_u64(case_seed);
            gen::vec(gen::any_u8(), 1..32)(&mut rng)
        };
        assert_eq!(draw(seed), draw(seed));
    }

    #[test]
    fn integer_shrink_descends_toward_zero() {
        assert!(100u64.shrink().contains(&0));
        assert!(100u64.shrink().contains(&50));
        assert!(0u64.shrink().is_empty());
        assert!((-8i64).shrink().contains(&0));
        assert!((-8i64).shrink().contains(&-4));
    }

    #[test]
    fn vec_shrink_proposes_structure_and_content() {
        let v = vec![5u8, 9, 200];
        let cands = v.shrink();
        assert!(cands.contains(&Vec::new()));
        assert!(cands.contains(&vec![9, 200]), "element removal");
        assert!(
            cands.iter().any(|c| c.len() == 3 && c != &v),
            "element shrink"
        );
    }

    proptest! {
        #![cases(32)]

        #[test]
        fn macro_generates_runnable_tests(
            a in gen::range(0u32..10),
            b in gen::range(0u32..10),
        ) {
            prop_assert!(a + b < 20);
            prop_assert_ne!(a + b + 1, 0);
        }

        #[test]
        fn one_of_covers_all_arms(picks in gen::vec(
            crate::one_of![gen::just(1u8), gen::just(2u8), gen::just(3u8)],
            64..65,
        )) {
            for p in &picks {
                prop_assert!((1..=3).contains(p));
            }
        }
    }
}
