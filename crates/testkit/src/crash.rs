//! Deterministic operation plans and a pure replay oracle for the
//! kill-at-random-commit durability harness (`mccrash`).
//!
//! A [`CrashPlan`] expands a seed into a fixed mutation sequence over a
//! small key universe. The child process executes the plan against a
//! real cache with the redo log attached and is killed — by chaos
//! injection — at a seed-chosen *append index*. The parent then replays
//! the log into a fresh cache and compares it against [`simulate`], the
//! pure model of the same prefix.
//!
//! The oracle is **exact**, not a two-state window: the plan runs on a
//! single worker, the log writer is write-through (bytes reach the OS
//! before the append returns, and `kill`/`abort` does not empty the page
//! cache), and an operation produces a record *iff* it changes the store
//! — so the recovered state must equal `simulate(plan, fatal_op(k))`
//! with the fatal operation included exactly when the kill fires after
//! its frame was written.

use std::collections::BTreeMap;

use crate::rng::{Rng, SmallRng};

/// One mutation in a crash plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashOp {
    /// Unconditional store of `value` under `key`.
    Set {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Delete `key` (a no-op — and no log record — when absent).
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `incr key delta` (a no-op when absent or non-numeric).
    Incr {
        /// Key bytes.
        key: Vec<u8>,
        /// Wrapping-add delta.
        delta: u64,
    },
}

/// A seed-expanded mutation sequence.
#[derive(Clone, Debug)]
pub struct CrashPlan {
    /// The seed this plan was expanded from.
    pub seed: u64,
    /// The operations, in execution order.
    pub ops: Vec<CrashOp>,
}

/// Binary-value keys (`v:*`) in the plan's universe.
const VAL_KEYS: u64 = 12;
/// Decimal-value keys (`n:*`) in the plan's universe.
const NUM_KEYS: u64 = 6;

impl CrashPlan {
    /// Expands `seed` into `n` operations. Same seed, same plan — on any
    /// host, any build: the generator is the workspace's own xoshiro.
    pub fn from_seed(seed: u64, n: usize) -> CrashPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD0_C0FF_EE);
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let roll = rng.gen_range(0..100u32);
            let op = if roll < 55 {
                // Store: binary keys get random bytes; numeric keys get a
                // decimal so later incrs hit; a sliver of non-numeric
                // stores on numeric keys exercises the incr no-op path.
                if rng.gen_bool(0.7) {
                    let key = format!("v:{}", rng.gen_range(0..VAL_KEYS)).into_bytes();
                    let mut value = vec![0u8; rng.gen_range(1..96usize)];
                    rng.fill_bytes(&mut value);
                    CrashOp::Set { key, value }
                } else {
                    let key = format!("n:{}", rng.gen_range(0..NUM_KEYS)).into_bytes();
                    let value = if rng.gen_bool(0.85) {
                        rng.gen_range(0..1_000_000u64).to_string().into_bytes()
                    } else {
                        b"not-a-number".to_vec()
                    };
                    CrashOp::Set { key, value }
                }
            } else if roll < 75 {
                let key = if rng.gen_bool(0.7) {
                    format!("v:{}", rng.gen_range(0..VAL_KEYS))
                } else {
                    format!("n:{}", rng.gen_range(0..NUM_KEYS))
                };
                CrashOp::Delete { key: key.into_bytes() }
            } else {
                CrashOp::Incr {
                    key: format!("n:{}", rng.gen_range(0..NUM_KEYS)).into_bytes(),
                    delta: rng.gen_range(1..1000u64),
                }
            };
            ops.push(op);
        }
        CrashPlan { seed, ops }
    }
}

/// memcached's `safe_strtoull` shape: the whole value must be a decimal.
fn parse_decimal(b: &[u8]) -> Option<u64> {
    if b.is_empty() || b.len() > 20 {
        return None;
    }
    let mut v: u64 = 0;
    for &c in b {
        if !c.is_ascii_digit() {
            return None;
        }
        v = v.wrapping_mul(10).wrapping_add((c - b'0') as u64);
    }
    Some(v)
}

/// Whether executing `op` against `state` changes the store (and thus
/// produces exactly one redo record).
fn apply(state: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &CrashOp) -> bool {
    match op {
        CrashOp::Set { key, value } => {
            state.insert(key.clone(), value.clone());
            true
        }
        CrashOp::Delete { key } => state.remove(key).is_some(),
        CrashOp::Incr { key, delta } => {
            let Some(old) = state.get(key).and_then(|v| parse_decimal(v)) else {
                return false;
            };
            let new = old.wrapping_add(*delta);
            state.insert(key.clone(), new.to_string().into_bytes());
            true
        }
    }
}

/// The pure oracle: the store after the first `k` operations.
pub fn simulate(ops: &[CrashOp], k: usize) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut state = BTreeMap::new();
    for op in &ops[..k.min(ops.len())] {
        apply(&mut state, op);
    }
    state
}

/// Redo records the first `k` operations produce (each store-changing op
/// appends exactly one).
pub fn appends_for(ops: &[CrashOp], k: usize) -> u64 {
    let mut state = BTreeMap::new();
    ops[..k.min(ops.len())]
        .iter()
        .filter(|op| apply(&mut state, op))
        .count() as u64
}

/// The index of the operation that produces append number `kill_at`
/// (0-based), or `ops.len()` when the plan finishes first. The child dies
/// *during* this operation; whether its effect survives depends on the
/// kill mode (before/mid lose the frame, after keeps it).
pub fn fatal_op(ops: &[CrashOp], kill_at: u64) -> usize {
    let mut state = BTreeMap::new();
    let mut appends = 0u64;
    for (i, op) in ops.iter().enumerate() {
        if apply(&mut state, op) {
            if appends == kill_at {
                return i;
            }
            appends += 1;
        }
    }
    ops.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let a = CrashPlan::from_seed(7, 200);
        let b = CrashPlan::from_seed(7, 200);
        assert_eq!(a.ops, b.ops);
        let c = CrashPlan::from_seed(8, 200);
        assert_ne!(a.ops, c.ops, "different seeds must diverge");
    }

    #[test]
    fn plans_mix_all_op_kinds_and_noops() {
        let plan = CrashPlan::from_seed(42, 500);
        let sets = plan.ops.iter().filter(|o| matches!(o, CrashOp::Set { .. })).count();
        let dels = plan.ops.iter().filter(|o| matches!(o, CrashOp::Delete { .. })).count();
        let incrs = plan.ops.iter().filter(|o| matches!(o, CrashOp::Incr { .. })).count();
        assert!(sets > 0 && dels > 0 && incrs > 0, "{sets}/{dels}/{incrs}");
        // The plan must contain genuine no-ops (miss deletes / failed
        // incrs), or the append-counting oracle is never exercised.
        assert!(
            appends_for(&plan.ops, plan.ops.len()) < plan.ops.len() as u64,
            "expected some operations to produce no record"
        );
    }

    #[test]
    fn simulate_prefix_semantics() {
        let ops = vec![
            CrashOp::Set { key: b"n:0".to_vec(), value: b"10".to_vec() },
            CrashOp::Incr { key: b"n:0".to_vec(), delta: 5 },
            CrashOp::Delete { key: b"v:9".to_vec() }, // miss: no-op
            CrashOp::Set { key: b"v:0".to_vec(), value: b"x".to_vec() },
            CrashOp::Delete { key: b"n:0".to_vec() },
        ];
        assert_eq!(simulate(&ops, 0).len(), 0);
        assert_eq!(simulate(&ops, 2)[&b"n:0".to_vec()], b"15".to_vec());
        assert_eq!(simulate(&ops, 5).len(), 1);
        assert_eq!(appends_for(&ops, 3), 2, "miss delete appends nothing");
        assert_eq!(appends_for(&ops, 5), 4);
        // Append 2 is produced by op 3 (op 2 was the no-op).
        assert_eq!(fatal_op(&ops, 2), 3);
        assert_eq!(fatal_op(&ops, 99), ops.len(), "plan can finish first");
    }

    #[test]
    fn incr_on_non_numeric_is_a_noop() {
        let ops = vec![
            CrashOp::Set { key: b"n:1".to_vec(), value: b"abc".to_vec() },
            CrashOp::Incr { key: b"n:1".to_vec(), delta: 1 },
        ];
        assert_eq!(simulate(&ops, 2)[&b"n:1".to_vec()], b"abc".to_vec());
        assert_eq!(appends_for(&ops, 2), 1);
    }
}
