//! A minimal benchmark harness shaped like `criterion`'s API surface, so
//! the 11 bench binaries in `crates/bench` kept their structure when the
//! external dependency was removed: `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_custom`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Methodology, per benchmark:
//!
//! 1. **Warmup** — run the payload until ~[`Criterion::warmup_ms`] elapses
//!    (fills caches, spins up cache worker threads).
//! 2. **Calibration** — pick an iteration count so one sample lasts at
//!    least ~1 ms (or one iteration, whichever is longer).
//! 3. **Sampling** — take `sample_size` fixed-iteration samples and report
//!    per-iteration **median**, **p95**, mean, min, and max.
//!
//! Each group writes `BENCH_<group>.json` under
//! `target/testkit-bench/` (override with `TESTKIT_BENCH_DIR`), one
//! object per benchmark, so runs diff cleanly in CI:
//!
//! ```json
//! {
//!   "group": "fig4",
//!   "benchmarks": [
//!     {"name": "Baseline", "samples": 10, "iters_per_sample": 3,
//!      "median_ns": 812345.0, "p95_ns": 901234.0, "mean_ns": 823456.1,
//!      "min_ns": 799999.0, "max_ns": 912345.0}
//!   ]
//! }
//! ```
//!
//! Environment knobs: `TESTKIT_BENCH_SAMPLES` (override every group's
//! sample count), `TESTKIT_BENCH_WARMUP_MS`, `TESTKIT_BENCH_DIR`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Harness entry point; shaped like `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    /// Warmup budget per benchmark, in milliseconds.
    pub warmup_ms: u64,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let warmup_ms = std::env::var("TESTKIT_BENCH_WARMUP_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50);
        Criterion {
            warmup_ms,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            results: Vec::new(),
        }
    }
}

/// Per-iteration timing statistics for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// Benchmark name within its group.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (after calibration).
    pub iters_per_sample: u64,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time in nanoseconds.
    pub p95_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time in nanoseconds.
    pub max_ns: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
    }
}

impl BenchStats {
    fn from_samples(name: String, iters: u64, per_iter_ns: &mut [f64]) -> Self {
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        BenchStats {
            name,
            samples: per_iter_ns.len(),
            iters_per_sample: iters,
            median_ns: percentile(per_iter_ns, 0.5),
            p95_ns: percentile(per_iter_ns, 0.95),
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len().max(1) as f64,
            min_ns: per_iter_ns.first().copied().unwrap_or(0.0),
            max_ns: per_iter_ns.last().copied().unwrap_or(0.0),
        }
    }
}

/// A named collection of benchmarks reported and serialized together.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    results: Vec<BenchStats>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_custom`].
    pub fn bench_function(&mut self, id: impl ToString, mut f: impl FnMut(&mut Bencher)) {
        let id = id.to_string();
        let samples = std::env::var("TESTKIT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                self.sample_size
                    .unwrap_or(self.criterion.default_sample_size)
            })
            .max(2);

        // Warmup + calibration pass.
        let warmup_budget = Duration::from_millis(self.criterion.warmup_ms);
        let mut iters = 1u64;
        let mut one;
        let warmup_start = Instant::now();
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            one = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        // One sample should last >= ~1ms so Instant resolution is noise.
        let target = Duration::from_millis(1);
        if one < target {
            iters = (target.as_nanos() / one.as_nanos().max(1)).clamp(1, 1 << 20) as u64;
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        let stats = BenchStats::from_samples(id, iters, &mut per_iter_ns);
        println!(
            "{:<40} median {:>12} p95 {:>12}  ({} samples × {} iters)",
            format!("{}/{}", self.name, stats.name),
            format_ns(stats.median_ns),
            format_ns(stats.p95_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push(stats);
    }

    /// Finishes the group: writes `BENCH_<group>.json`.
    pub fn finish(&mut self) {
        let dir = std::env::var("TESTKIT_BENCH_DIR")
            .unwrap_or_else(|_| "target/testkit-bench".to_owned());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| {
            std::fs::write(&path, self.to_json())
        }) {
            eprintln!("[testkit] could not write {}: {e}", path.display());
        } else {
            println!("[testkit] wrote {}", path.display());
        }
    }

    /// The group's results as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"group\": {},\n  \"benchmarks\": [\n", json_str(&self.name)));
        for (i, b) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"samples\": {}, \"iters_per_sample\": {}, \
                 \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}}}{}\n",
                json_str(&b.name),
                b.samples,
                b.iters_per_sample,
                b.median_ns,
                b.p95_ns,
                b.mean_ns,
                b.min_ns,
                b.max_ns,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Times the benchmark payload; handed to the `bench_function` closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`, black-boxing the result so
    /// the optimizer cannot delete the payload.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the payload time itself: `f` receives the iteration count and
    /// returns the total elapsed time (criterion's `iter_custom`).
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

/// Bundles bench functions under one name, like `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::bench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`), like
/// `criterion_main!`. Ignores harness CLI arguments such as `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_blackboxes() {
        let mut c = Criterion {
            warmup_ms: 1,
            default_sample_size: 3,
        };
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(g.results.len(), 1);
        let s = &g.results[0];
        assert!(s.median_ns > 0.0);
        assert!(s.p95_ns >= s.median_ns);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn iter_custom_uses_reported_time() {
        let mut c = Criterion {
            warmup_ms: 0,
            default_sample_size: 2,
        };
        let mut g = c.benchmark_group("unit");
        g.sample_size(2);
        g.bench_function("fixed", |b| {
            b.iter_custom(|iters| Duration::from_micros(10) * iters as u32)
        });
        let s = &g.results[0];
        // 10µs per iteration, exactly.
        assert!((s.median_ns - 10_000.0).abs() < 1.0, "{s:?}");
    }

    #[test]
    fn json_shape_is_stable() {
        let mut c = Criterion {
            warmup_ms: 0,
            default_sample_size: 2,
        };
        let mut g = c.benchmark_group("fig\"x");
        g.sample_size(2);
        g.bench_function("a/b", |b| b.iter_custom(|i| Duration::from_nanos(5) * i as u32));
        let json = g.to_json();
        assert!(json.contains("\"group\": \"fig\\\"x\""), "{json}");
        assert!(json.contains("\"median_ns\""), "{json}");
        assert!(json.contains("\"p95_ns\""), "{json}");
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 2.5);
    }
}
