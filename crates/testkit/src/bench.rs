//! A minimal benchmark harness shaped like `criterion`'s API surface, so
//! the 11 bench binaries in `crates/bench` kept their structure when the
//! external dependency was removed: `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_custom`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Methodology, per benchmark:
//!
//! 1. **Warmup** — run the payload until ~[`Criterion::warmup_ms`] elapses
//!    (fills caches, spins up cache worker threads).
//! 2. **Calibration** — pick an iteration count so one sample lasts at
//!    least ~1 ms (or one iteration, whichever is longer).
//! 3. **Sampling** — take `sample_size` fixed-iteration samples and report
//!    per-iteration **median**, **p95**, mean, min, and max.
//!
//! Each group writes `BENCH_<group>.json` under
//! `target/testkit-bench/` (override with `TESTKIT_BENCH_DIR`), one
//! object per benchmark, so runs diff cleanly in CI:
//!
//! ```json
//! {
//!   "group": "fig4",
//!   "benchmarks": [
//!     {"name": "Baseline", "samples": 10, "iters_per_sample": 3,
//!      "median_ns": 812345.0, "p95_ns": 901234.0, "mean_ns": 823456.1,
//!      "min_ns": 799999.0, "max_ns": 912345.0}
//!   ]
//! }
//! ```
//!
//! Environment knobs: `TESTKIT_BENCH_SAMPLES` (override every group's
//! sample count), `TESTKIT_BENCH_WARMUP_MS`, `TESTKIT_BENCH_DIR`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Harness entry point; shaped like `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    /// Warmup budget per benchmark, in milliseconds.
    pub warmup_ms: u64,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let warmup_ms = std::env::var("TESTKIT_BENCH_WARMUP_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50);
        Criterion {
            warmup_ms,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            results: Vec::new(),
        }
    }
}

/// Per-iteration timing statistics for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// Benchmark name within its group.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (after calibration).
    pub iters_per_sample: u64,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time in nanoseconds.
    pub p95_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time in nanoseconds.
    pub max_ns: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
    }
}

impl BenchStats {
    fn from_samples(name: String, iters: u64, per_iter_ns: &mut [f64]) -> Self {
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        BenchStats {
            name,
            samples: per_iter_ns.len(),
            iters_per_sample: iters,
            median_ns: percentile(per_iter_ns, 0.5),
            p95_ns: percentile(per_iter_ns, 0.95),
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len().max(1) as f64,
            min_ns: per_iter_ns.first().copied().unwrap_or(0.0),
            max_ns: per_iter_ns.last().copied().unwrap_or(0.0),
        }
    }
}

/// A named collection of benchmarks reported and serialized together.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    results: Vec<BenchStats>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    fn sample_count(&self) -> usize {
        std::env::var("TESTKIT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                self.sample_size
                    .unwrap_or(self.criterion.default_sample_size)
            })
            .max(2)
    }

    /// Warmup + calibration: returns the iteration count per sample.
    ///
    /// Calibrating off a single pass (this loop used to keep only the LAST
    /// warmup measurement) let one descheduled pass pick a wildly wrong
    /// iteration count, which is exactly how `norec/w4`-style small-tx
    /// benches went noisy run-to-run. Keep the MINIMUM per-iteration time
    /// across all warmup passes — the best observation is the least
    /// contaminated estimate of the payload's true cost — and always take
    /// a few passes even once the time budget is spent (long payloads bail
    /// out via the 4× budget cap instead).
    fn calibrate(&self, f: &mut impl FnMut(&mut Bencher)) -> u64 {
        const MIN_WARMUP_PASSES: u32 = 3;
        let warmup_budget = Duration::from_millis(self.criterion.warmup_ms);
        let mut iters = 1u64;
        let mut one = Duration::MAX;
        let mut passes = 0u32;
        let warmup_start = Instant::now();
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            one = one.min(b.elapsed.max(Duration::from_nanos(1)) / iters as u32);
            passes += 1;
            let spent = warmup_start.elapsed();
            if spent >= warmup_budget
                && (passes >= MIN_WARMUP_PASSES || spent >= warmup_budget * 4)
            {
                break;
            }
        }
        // One sample should last >= ~1ms so Instant resolution is noise.
        let target = Duration::from_millis(1);
        if one < target {
            iters = (target.as_nanos() / one.as_nanos().max(1)).clamp(1, 1 << 20) as u64;
        }
        iters
    }

    fn one_sample(f: &mut impl FnMut(&mut Bencher), iters: u64) -> f64 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.elapsed.as_nanos() as f64 / iters as f64
    }

    fn record(&mut self, id: String, iters: u64, per_iter_ns: &mut [f64]) {
        let stats = BenchStats::from_samples(id, iters, per_iter_ns);
        println!(
            "{:<40} median {:>12} p95 {:>12}  ({} samples × {} iters)",
            format!("{}/{}", self.name, stats.name),
            format_ns(stats.median_ns),
            format_ns(stats.p95_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push(stats);
    }

    /// Runs one benchmark. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_custom`].
    pub fn bench_function(&mut self, id: impl ToString, mut f: impl FnMut(&mut Bencher)) {
        let id = id.to_string();
        let samples = self.sample_count();
        let iters = self.calibrate(&mut f);
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            per_iter_ns.push(Self::one_sample(&mut f, iters));
        }
        self.record(id, iters, &mut per_iter_ns);
    }

    /// Runs two benchmarks with their timed samples **interleaved** in
    /// time: a1 b1 a2 b2 … instead of a1..aN b1..bN.
    ///
    /// Use this when the two benchmarks will be compared against each
    /// other (a before/after or slow-path/fast-path pair). Host noise on
    /// shared machines drifts in epochs that last seconds — long enough
    /// that two back-to-back benchmark runs can land in different noise
    /// regimes, skewing their ratio by 50% or more run-to-run. Alternating
    /// samples makes both arms see the same epochs, so their medians stay
    /// comparable even when the absolute numbers wander.
    pub fn bench_pair(
        &mut self,
        id_a: impl ToString,
        mut f_a: impl FnMut(&mut Bencher),
        id_b: impl ToString,
        mut f_b: impl FnMut(&mut Bencher),
    ) {
        let samples = self.sample_count();
        let iters_a = self.calibrate(&mut f_a);
        let iters_b = self.calibrate(&mut f_b);
        let mut ns_a: Vec<f64> = Vec::with_capacity(samples);
        let mut ns_b: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            ns_a.push(Self::one_sample(&mut f_a, iters_a));
            ns_b.push(Self::one_sample(&mut f_b, iters_b));
        }
        self.record(id_a.to_string(), iters_a, &mut ns_a);
        self.record(id_b.to_string(), iters_b, &mut ns_b);
    }

    /// Finishes the group: writes `BENCH_<group>.json` and returns the
    /// collected stats so callers can assert intra-run invariants (e.g.
    /// a fast-path/slow-path ratio floor) that stay meaningful even when
    /// host noise moves every absolute number together.
    pub fn finish(&mut self) -> Vec<BenchStats> {
        let dir = std::env::var("TESTKIT_BENCH_DIR")
            .unwrap_or_else(|_| "target/testkit-bench".to_owned());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| {
            std::fs::write(&path, self.to_json())
        }) {
            eprintln!("[testkit] could not write {}: {e}", path.display());
        } else {
            println!("[testkit] wrote {}", path.display());
        }
        std::mem::take(&mut self.results)
    }

    /// The group's results as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"group\": {},\n  \"benchmarks\": [\n", json_str(&self.name)));
        for (i, b) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"samples\": {}, \"iters_per_sample\": {}, \
                 \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}}}{}\n",
                json_str(&b.name),
                b.samples,
                b.iters_per_sample,
                b.median_ns,
                b.p95_ns,
                b.mean_ns,
                b.min_ns,
                b.max_ns,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------
// Report comparison (the offline regression gate)
// ---------------------------------------------------------------------

/// One benchmark's statistics extracted from a `BENCH_<group>.json` report.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportEntry {
    /// Benchmark name within its group.
    pub name: String,
    /// Median per-iteration nanoseconds.
    pub median_ns: f64,
    /// Minimum per-iteration nanoseconds (the low-noise cost estimator).
    pub min_ns: f64,
}

/// Parses the `benchmarks` array of a report produced by
/// [`BenchmarkGroup::finish`]. Only `name`, `median_ns`, and `min_ns` are
/// extracted; the parser is deliberately matched to our own writer, not a
/// general JSON reader.
pub fn parse_report(json: &str) -> Vec<ReportEntry> {
    let mut out = Vec::new();
    let mut rest = json;
    // Skip the group header so its "name"-less prefix can't confuse us.
    if let Some(i) = rest.find("\"benchmarks\"") {
        rest = &rest[i..];
    }
    while let Some(i) = rest.find("\"name\": \"") {
        rest = &rest[i + "\"name\": \"".len()..];
        let mut name = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = rest.len();
        while let Some((j, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        name.push(match esc {
                            'n' => '\n',
                            other => other,
                        });
                    }
                }
                '"' => {
                    consumed = j + 1;
                    break;
                }
                c => name.push(c),
            }
        }
        rest = &rest[consumed..];
        let field = |rest: &str, key: &str| -> Option<(f64, usize)> {
            let k = rest.find(key)?;
            let num = &rest[k + key.len()..];
            let end = num
                .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .unwrap_or(num.len());
            num[..end].parse::<f64>().ok().map(|v| (v, k + key.len() + end))
        };
        let Some((median, _)) = field(rest, "\"median_ns\": ") else {
            break;
        };
        // min_ns sits after median_ns in the writer's field order.
        let Some((min, consumed)) = field(rest, "\"min_ns\": ") else {
            break;
        };
        out.push(ReportEntry {
            name,
            median_ns: median,
            min_ns: min,
        });
        rest = &rest[consumed..];
    }
    out
}

/// The verdict for one benchmark present in both reports.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// Baseline median (ns).
    pub base_ns: f64,
    /// Fresh minimum (ns) — already the optimistic estimate, yet still
    /// above the gate.
    pub fresh_ns: f64,
}

/// Compares a fresh report against a committed baseline.
///
/// The gate compares the **fresh minimum** against the **baseline
/// median**: host noise (frequency scaling, co-tenants) only ever adds
/// time, so a fresh run's min is a stable cost estimator, while the
/// baseline's median sits a noise-margin above its own floor. A real
/// regression shifts the whole distribution — min included — past the
/// baseline median; a noisy run does not. (Median-vs-median flapped by
/// ±60% between consecutive runs on the reference host.)
///
/// A benchmark **regresses** when `fresh.min_ns` exceeds
/// `base.median_ns` by more than `threshold` (a fraction: 0.15 = 15%)
/// AND by more than an absolute 5ns floor (sub-nanosecond medians — e.g.
/// the alloc-count pseudo-benches scaled ×1000 — would otherwise flap on
/// noise). A zero baseline is a hard promise: any nonzero fresh value
/// fails regardless of the threshold (that is how "zero allocations per
/// commit" stays pinned). Benchmarks missing from either side are
/// ignored — renames are not regressions.
pub fn compare_reports(
    baseline: &[ReportEntry],
    fresh: &[ReportEntry],
    threshold: f64,
) -> Vec<Regression> {
    let mut bad = Vec::new();
    for b in baseline {
        let Some(f) = fresh.iter().find(|f| f.name == b.name) else {
            continue;
        };
        let regressed = if b.median_ns == 0.0 {
            f.min_ns > 0.0
        } else {
            let delta = f.min_ns - b.median_ns;
            delta > b.median_ns * threshold && delta > 5.0
        };
        if regressed {
            bad.push(Regression {
                name: b.name.clone(),
                base_ns: b.median_ns,
                fresh_ns: f.min_ns,
            });
        }
    }
    bad
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Times the benchmark payload; handed to the `bench_function` closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`, black-boxing the result so
    /// the optimizer cannot delete the payload.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the payload time itself: `f` receives the iteration count and
    /// returns the total elapsed time (criterion's `iter_custom`).
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

/// Bundles bench functions under one name, like `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::bench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`), like
/// `criterion_main!`. Ignores harness CLI arguments such as `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_blackboxes() {
        let mut c = Criterion {
            warmup_ms: 1,
            default_sample_size: 3,
        };
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(g.results.len(), 1);
        let s = &g.results[0];
        assert!(s.median_ns > 0.0);
        assert!(s.p95_ns >= s.median_ns);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn iter_custom_uses_reported_time() {
        let mut c = Criterion {
            warmup_ms: 0,
            default_sample_size: 2,
        };
        let mut g = c.benchmark_group("unit");
        g.sample_size(2);
        g.bench_function("fixed", |b| {
            b.iter_custom(|iters| Duration::from_micros(10) * iters as u32)
        });
        let s = &g.results[0];
        // 10µs per iteration, exactly.
        assert!((s.median_ns - 10_000.0).abs() < 1.0, "{s:?}");
    }

    #[test]
    fn calibration_ignores_outlier_warmup_pass() {
        let mut c = Criterion {
            warmup_ms: 1,
            default_sample_size: 2,
        };
        let mut g = c.benchmark_group("unit");
        g.sample_size(2);
        let mut calls = 0u32;
        // The first warmup pass claims to be absurdly slow (a descheduled
        // pass); calibration must use the minimum across passes, not the
        // last/only observation, or iters_per_sample collapses to 1.
        g.bench_function("outlier", |b| {
            calls += 1;
            let slow = calls == 1;
            b.iter_custom(move |iters| {
                if slow {
                    Duration::from_millis(50) * iters as u32
                } else {
                    Duration::from_micros(10) * iters as u32
                }
            });
        });
        let s = &g.results[0];
        assert!(s.iters_per_sample >= 50, "min-of-warmup calibration: {s:?}");
        assert!((s.median_ns - 10_000.0).abs() < 1.0, "{s:?}");
    }

    #[test]
    fn json_shape_is_stable() {
        let mut c = Criterion {
            warmup_ms: 0,
            default_sample_size: 2,
        };
        let mut g = c.benchmark_group("fig\"x");
        g.sample_size(2);
        g.bench_function("a/b", |b| b.iter_custom(|i| Duration::from_nanos(5) * i as u32));
        let json = g.to_json();
        assert!(json.contains("\"group\": \"fig\\\"x\""), "{json}");
        assert!(json.contains("\"median_ns\""), "{json}");
        assert!(json.contains("\"p95_ns\""), "{json}");
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 2.5);
    }

    #[test]
    fn parse_report_roundtrips_writer_output() {
        let mut c = Criterion {
            warmup_ms: 0,
            default_sample_size: 2,
        };
        let mut g = c.benchmark_group("gate");
        g.sample_size(2);
        g.bench_function("eager/w4", |b| {
            b.iter_custom(|i| Duration::from_nanos(100) * i as u32)
        });
        g.bench_function("norec/\"quoted\"", |b| {
            b.iter_custom(|i| Duration::from_nanos(200) * i as u32)
        });
        let entries = parse_report(&g.to_json());
        assert_eq!(entries.len(), 2, "{entries:?}");
        assert_eq!(entries[0].name, "eager/w4");
        assert!((entries[0].median_ns - 100.0).abs() < 1.0, "{entries:?}");
        assert!((entries[0].min_ns - 100.0).abs() < 1.0, "{entries:?}");
        assert_eq!(entries[1].name, "norec/\"quoted\"");
        assert!((entries[1].median_ns - 200.0).abs() < 1.0, "{entries:?}");
        assert!((entries[1].min_ns - 200.0).abs() < 1.0, "{entries:?}");
    }

    #[test]
    fn compare_flags_only_true_regressions() {
        // In these fixtures the fresh run's min sits 20% under its median
        // — the noise margin the min-vs-baseline-median gate exists for.
        let e = |name: &str, median_ns: f64| ReportEntry {
            name: name.into(),
            median_ns,
            min_ns: median_ns * 0.8,
        };
        let baseline = [
            e("a", 100.0),
            e("b", 100.0),
            e("tiny", 2.0),
            e("zero", 0.0),
            e("gone", 50.0),
        ];
        let fresh = [
            e("a", 143.0),  // min 114.4 — within threshold of base median
            e("b", 150.0),  // min 120.0 — regression (+20% past the gate)
            e("tiny", 4.0), // +100% but under the 5ns floor
            e("zero", 0.0), // pinned at zero, still zero
            e("new", 9.0),  // not in baseline — ignored
        ];
        let bad = compare_reports(&baseline, &fresh, 0.15);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].name, "b");
        assert_eq!(bad[0].base_ns, 100.0);
        assert_eq!(bad[0].fresh_ns, 120.0);

        // A zero baseline is a hard promise: any nonzero fresh fails.
        let bad = compare_reports(&[e("zero", 0.0)], &[e("zero", 1.0)], 0.15);
        assert_eq!(bad.len(), 1, "{bad:?}");

        // A noisy-but-honest run never fails: median drifted +60% while
        // the floor stayed put.
        let noisy = [ReportEntry {
            name: "a".into(),
            median_ns: 160.0,
            min_ns: 98.0,
        }];
        assert!(compare_reports(&[e("a", 100.0)], &noisy, 0.15).is_empty());

        // Improvements never fail, however large.
        assert!(compare_reports(&[e("a", 100.0)], &[e("a", 10.0)], 0.15).is_empty());
    }
}
