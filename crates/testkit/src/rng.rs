//! Seeded, dependency-free pseudo-random number generation.
//!
//! Two classic generators, both tiny and fully deterministic:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. One u64 of state,
//!   passes BigCrush, and is the canonical way to expand a small seed into
//!   the larger state of another generator.
//! * [`Xoshiro256pp`] — Blackman/Vigna's xoshiro256++, the general-purpose
//!   workhorse (also what `rand`'s `SmallRng` used on 64-bit targets, which
//!   is why [`SmallRng`] aliases it: call sites migrated from `rand` keep
//!   both their spelling and their statistical quality).
//!
//! The [`Rng`] trait mirrors the parts of `rand::Rng` this workspace uses —
//! `gen_range`, `gen_bool`, `fill_bytes` — so replacing the external crate
//! was an import swap, not a rewrite.
//!
//! ```
//! use testkit::rng::{Rng, SmallRng};
//!
//! let mut a = SmallRng::seed_from_u64(42);
//! let mut b = SmallRng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(10..20u64);
//! assert!((10..20).contains(&x));
//! ```

/// The sampling surface shared by every generator in this module, shaped
/// after `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Rng::next_u64`],
    /// the better-mixed bits for both generators here).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from `range` (half-open, like `rand`'s
    /// `gen_range(a..b)`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 random bits -> uniform in [0, 1), exactly like rand's Bernoulli.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Uniform sampling from a half-open range, implemented for the integer
/// types the workspace draws.
pub trait SampleUniform: Copy {
    /// Draws one sample from `range` using `rng`.
    fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Lemire's widening-multiply bounded sampler, with the
                // cheap no-rejection variant: a 64-bit draw mapped through
                // a 128-bit multiply. The modulo bias is < 2^-64 * span,
                // irrelevant for test workloads and fully deterministic.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )+};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// SplitMix64: one u64 of state, one multiply-xor-shift chain per output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub const fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands `seed` through SplitMix64 into the 256-bit state, exactly
    /// as the xoshiro reference code recommends (and `rand` does), so the
    /// all-zero state is unreachable.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The workspace's default small generator (migration alias for call sites
/// that used `rand::rngs::SmallRng`).
pub type SmallRng = Xoshiro256pp;

/// Mixes a base seed with a stream index into an uncorrelated child seed —
/// the standard way to give thread `i` / case `i` its own stream.
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::seed_from_u64(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
    sm.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 from the public-domain splitmix64.c.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
        assert_eq!(r.gen_range(3u8..4), 3, "singleton range");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut r2 = SmallRng::seed_from_u64(3);
        let mut buf2 = [0u8; 37];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn mixed_seeds_decorrelate_streams() {
        let s0 = mix_seed(42, 0);
        let s1 = mix_seed(42, 1);
        assert_ne!(s0, s1);
        assert_ne!(mix_seed(43, 0), s0);
    }
}
