//! Deterministic, seed-replayable concurrency stress schedules for the
//! `tm` runtime.
//!
//! The shape follows the systematic-testing literature (and the paper's
//! own evaluation): N threads run *random transactional programs* whose
//! content is a pure function of `(seed, thread, txn index)`, and the
//! final heap is checked against a **sequential model**. The oracle works
//! because STM promises serializability: every transaction increments a
//! shared ticket cell *inside* the transaction, so the committed ticket
//! values name the equivalent serial order exactly. Replaying each
//! transaction's operations in ticket order through a plain `Vec<u64>`
//! interpreter must land on the same final state — any divergence is a
//! runtime bug (lost update, dirty read, broken undo/redo log, ...).
//!
//! Interleavings are shaped, not fixed: threads advance in *barrier-stepped
//! rounds* (every thread starts round `r` together, with a seed-derived
//! stagger spin), which concentrates overlap far beyond free-running
//! threads. The schedule's *programs* are fully deterministic, so a
//! failing seed prints one line that reproduces the exact program set:
//!
//! ```text
//! [testkit] stress divergence (seed 0x000000000000002a, eager/rwlock/no-cm) ...
//! [testkit] replay: cargo run --release -p testkit --bin stress -- --seed 0x2a ...
//! ```
//!
//! [`run_matrix`] sweeps every `Algorithm` × `SerialLockMode` ×
//! `ContentionManager` combination the runtime supports.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use tm::{
    Abort, Algorithm, ClockShardStats, ContentionManager, SerialLockMode, SwitchError, TCell,
    TmRuntime, Transaction,
};

use crate::rng::{mix_seed, Rng, SmallRng, SplitMix64};

/// Size and combination parameters for one schedule.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Worker threads.
    pub threads: usize,
    /// Shared transactional cells.
    pub cells: usize,
    /// Transactions per thread.
    pub txns_per_thread: usize,
    /// Upper bound on operations per transaction (the count is drawn per
    /// transaction from the seed).
    pub max_ops_per_txn: usize,
    /// STM algorithm under test.
    pub algorithm: Algorithm,
    /// Serial-lock mode under test.
    pub serial_lock: SerialLockMode,
    /// Contention manager under test.
    pub contention: ContentionManager,
}

impl StressConfig {
    /// A small schedule suitable for unit tests and smoke runs: enough
    /// contention to abort constantly, small enough to finish in
    /// milliseconds.
    pub fn smoke() -> Self {
        StressConfig {
            threads: 4,
            cells: 8,
            txns_per_thread: 60,
            max_ops_per_txn: 6,
            algorithm: Algorithm::Eager,
            serial_lock: SerialLockMode::ReaderWriter,
            contention: ContentionManager::GCC_DEFAULT,
        }
    }

    /// Short display label for the runtime combination.
    pub fn combo(&self) -> String {
        format!(
            "{}/{}/{}",
            self.algorithm,
            match self.serial_lock {
                SerialLockMode::ReaderWriter => "rwlock",
                SerialLockMode::None => "nolock",
            },
            self.contention
        )
    }
}

/// A passed schedule's measurements.
#[derive(Clone, Debug)]
pub struct StressReport {
    /// The combination that ran.
    pub combo: String,
    /// Committed transactions (= threads × txns_per_thread).
    pub commits: u64,
    /// Aborted attempts observed by the runtime during the schedule.
    pub aborts: u64,
    /// Writes the runtime elided as silent stores during the schedule.
    pub silent_elisions: u64,
    /// Completed algorithm/CM switches during the schedule (nonzero only
    /// for the `*_switching` arms on a serial-locked runtime).
    pub config_switches: u64,
}

/// A schedule whose concurrent outcome disagreed with the sequential
/// model. [`fmt::Display`] prints the seed and a replay command.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The seed that reproduces the failing schedule.
    pub seed: u64,
    /// The runtime combination that diverged.
    pub combo: String,
    /// What disagreed.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[testkit] stress divergence (seed {:#018x}, {}): {}\n\
             [testkit] replay: cargo run --release -p testkit --bin stress -- --seed {:#x}",
            self.seed, self.combo, self.detail, self.seed
        )
    }
}

impl std::error::Error for Divergence {}

/// One operation of a random transactional program. Every variant is a
/// pure function of its operands, so the sequential interpreter in
/// [`run_schedule`] replays it exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StressOp {
    /// Store a constant.
    Write(usize, u64),
    /// Add a constant (wrapping).
    Add(usize, u64),
    /// Copy cell `a` into cell `b`.
    Copy(usize, usize),
    /// Combine cells `a` and `b` into `b` (xor-rotate-add, so ordering
    /// mistakes cannot cancel out the way plain addition can).
    Mix(usize, usize),
}

/// How a schedule draws its per-transaction programs. Plain `fn` pointer so
/// worker threads can share it without capturing.
pub type ProgramFn = fn(u64, usize, usize, &StressConfig) -> Vec<StressOp>;

/// The program for transaction `txn` of thread `thread` — a pure function
/// of the schedule seed, replayable anywhere.
pub fn txn_program(seed: u64, thread: usize, txn: usize, cfg: &StressConfig) -> Vec<StressOp> {
    let mut rng = SmallRng::seed_from_u64(mix_seed(
        mix_seed(seed, thread as u64 + 1),
        txn as u64 + 1,
    ));
    let n = rng.gen_range(1..cfg.max_ops_per_txn.max(2));
    (0..n)
        .map(|_| match rng.gen_range(0u32..4) {
            0 => StressOp::Write(rng.gen_range(0..cfg.cells), rng.next_u64()),
            1 => StressOp::Add(rng.gen_range(0..cfg.cells), rng.gen_range(0u64..1000)),
            2 => StressOp::Copy(rng.gen_range(0..cfg.cells), rng.gen_range(0..cfg.cells)),
            _ => StressOp::Mix(rng.gen_range(0..cfg.cells), rng.gen_range(0..cfg.cells)),
        })
        .collect()
}

/// The **write-heavy** program for transaction `txn` of thread `thread`:
/// three quarters of the operations mutate, and two arms manufacture
/// *silent stores* on purpose — a self-copy writes back the value it just
/// read, and a duplicated constant write makes its second half a no-op —
/// so the write path's silent-store elision fires constantly while the
/// ticket oracle keeps checking serializability underneath it.
pub fn wh_txn_program(seed: u64, thread: usize, txn: usize, cfg: &StressConfig) -> Vec<StressOp> {
    let mut rng = SmallRng::seed_from_u64(mix_seed(
        mix_seed(seed, 0x3717 + thread as u64),
        txn as u64 + 1,
    ));
    let n = rng.gen_range(2..cfg.max_ops_per_txn.max(3));
    let mut ops = Vec::with_capacity(n + 1);
    while ops.len() < n {
        match rng.gen_range(0u32..8) {
            0 | 1 | 2 => ops.push(StressOp::Write(rng.gen_range(0..cfg.cells), rng.next_u64())),
            3 | 4 => ops.push(StressOp::Add(rng.gen_range(0..cfg.cells), rng.gen_range(0u64..1000))),
            5 => {
                // Silent by construction: write the value just read.
                let i = rng.gen_range(0..cfg.cells);
                ops.push(StressOp::Copy(i, i));
            }
            6 => {
                // The second write of the pair stores what's already there.
                let i = rng.gen_range(0..cfg.cells);
                let v = rng.next_u64();
                ops.push(StressOp::Write(i, v));
                ops.push(StressOp::Write(i, v));
            }
            _ => ops.push(StressOp::Mix(rng.gen_range(0..cfg.cells), rng.gen_range(0..cfg.cells))),
        }
    }
    ops
}

/// The **contended-commit** program for transaction `txn` of thread
/// `thread`: every mutation lands in the thread's own block of cells
/// (`cells / threads` wide), so worker *write sets are disjoint by
/// construction* and the only shared write is the ticket cell — the
/// schedule contends on the commit machinery itself (clock shards, orec
/// stripes, the NOrec seqlock) rather than on data. Reads still cross
/// blocks: `Copy` and `Mix` pull a neighbour's cell into the own block,
/// so validation keeps real cross-thread edges to check.
///
/// Write-disjointness needs `cfg.cells >= cfg.threads`; with fewer cells
/// the blocks wrap and overlap (the schedule stays correct, just not
/// disjoint).
pub fn contended_txn_program(
    seed: u64,
    thread: usize,
    txn: usize,
    cfg: &StressConfig,
) -> Vec<StressOp> {
    let mut rng = SmallRng::seed_from_u64(mix_seed(
        mix_seed(seed, 0xC0D7 + thread as u64),
        txn as u64 + 1,
    ));
    let block = (cfg.cells / cfg.threads.max(1)).max(1);
    let lo = (thread * block) % cfg.cells;
    let width = block.min(cfg.cells - lo);
    let n = rng.gen_range(2..cfg.max_ops_per_txn.max(3));
    (0..n)
        .map(|_| {
            let own = lo + rng.gen_range(0..width);
            match rng.gen_range(0u32..8) {
                0 | 1 | 2 => StressOp::Write(own, rng.next_u64()),
                3 | 4 => StressOp::Add(own, rng.gen_range(0u64..1000)),
                5 | 6 => StressOp::Copy(rng.gen_range(0..cfg.cells), own),
                _ => StressOp::Mix(rng.gen_range(0..cfg.cells), own),
            }
        })
        .collect()
}

fn mix_values(a: u64, b: u64) -> u64 {
    (a ^ b).rotate_left(7).wrapping_add(0x9E37_79B9_7F4A_7C15)
}

fn apply_model(model: &mut [u64], op: StressOp) {
    match op {
        StressOp::Write(i, v) => model[i] = v,
        StressOp::Add(i, d) => model[i] = model[i].wrapping_add(d),
        StressOp::Copy(a, b) => model[b] = model[a],
        StressOp::Mix(a, b) => model[b] = mix_values(model[a], model[b]),
    }
}

/// Applies one op transactionally — the concurrent counterpart of
/// [`apply_model`], shared by every schedule flavor.
fn apply_tx<'env, Tx: Transaction<'env>>(
    tx: &mut Tx,
    cells: &'env [TCell<u64>],
    op: StressOp,
) -> Result<(), Abort> {
    match op {
        StressOp::Write(i, v) => tx.write(&cells[i], v),
        StressOp::Add(i, d) => tx.modify(&cells[i], |x| x.wrapping_add(d)).map(|_| ()),
        StressOp::Copy(a, b) => {
            let v = tx.read(&cells[a])?;
            tx.write(&cells[b], v)
        }
        StressOp::Mix(a, b) => {
            let va = tx.read(&cells[a])?;
            let vb = tx.read(&cells[b])?;
            tx.write(&cells[b], mix_values(va, vb))
        }
    }
}

fn initial_values(seed: u64, cells: usize) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(mix_seed(seed, 0xCE11));
    (0..cells).map(|_| rng.next_u64()).collect()
}

/// Runs one barrier-stepped schedule and checks it against the sequential
/// model.
///
/// # Errors
///
/// Returns [`Divergence`] — carrying the replay seed — when the committed
/// state disagrees with the model.
pub fn run_schedule(seed: u64, cfg: &StressConfig) -> Result<StressReport, Divergence> {
    run_schedule_impl(seed, cfg, false, txn_program, false).map(|(r, _, _)| r)
}

/// The configurations the mid-load switcher cycles through: every
/// algorithm appears with a distinct contention manager, so a switching
/// schedule keeps crossing eager↔lazy↔norec boundaries (undo-log,
/// redo-log, and value-validation commit paths) while transactions are
/// in flight.
const SWITCH_CYCLE: [(Algorithm, ContentionManager); 4] = [
    (Algorithm::Eager, ContentionManager::GCC_DEFAULT),
    (Algorithm::Norec, ContentionManager::Backoff { max_shift: 8 }),
    (Algorithm::Lazy, ContentionManager::HOURGLASS_128),
    (Algorithm::Norec, ContentionManager::None),
];

/// The controller stand-in: keeps calling [`TmRuntime::switch_config`]
/// with seed-derived picks from [`SWITCH_CYCLE`] until told to stop,
/// returning how many switches completed. On a lock-free runtime every
/// attempt must be refused with [`SwitchError::NoSerialLock`] — anything
/// else is a harness bug worth dying loudly over.
fn switcher_loop(rt: &TmRuntime, stop: &AtomicBool, seed: u64, locked: bool) -> u64 {
    let mut rng = SplitMix64::seed_from_u64(mix_seed(seed, 0x5317C4));
    let mut switched = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let (algo, cm) = SWITCH_CYCLE[rng.gen_range(0..SWITCH_CYCLE.len())];
        match rt.switch_config(algo, cm) {
            Ok(changed) => {
                assert!(locked, "switch succeeded without a serial lock");
                // `Ok(false)` is the no-op path (already at that config):
                // the runtime's counter only moves on real switches.
                switched += u64::from(changed);
            }
            Err(SwitchError::NoSerialLock) => {
                assert!(!locked, "switch refused despite a serial lock")
            }
        }
        // A short seed-derived pause between quiesces so workers make
        // real progress under every configuration the cycle visits.
        std::thread::sleep(std::time::Duration::from_micros(rng.gen_range(20u64..200)));
    }
    switched
}

/// Runs one barrier-stepped schedule with a live controller thread
/// flipping the runtime's algorithm + contention manager underneath it
/// (the adaptive runtime's quiesce-and-swap, driven adversarially), and
/// checks the result against the sequential model. On a serial-locked
/// runtime the schedule must have crossed at least one switch; on a
/// lock-free runtime every switch attempt must have been refused.
///
/// # Errors
///
/// Returns [`Divergence`] on model disagreement, when no switch landed
/// despite a serial lock, or when the runtime's switch counter disagrees
/// with the switcher's own tally.
pub fn run_schedule_switching(seed: u64, cfg: &StressConfig) -> Result<StressReport, Divergence> {
    let (report, _, _) = run_schedule_impl(seed, cfg, false, txn_program, true)?;
    check_switch_report(seed, cfg, &report, "")?;
    Ok(report)
}

/// Shared post-conditions for the switching arms (plain and chaos).
fn check_switch_report(
    seed: u64,
    cfg: &StressConfig,
    report: &StressReport,
    prefix: &str,
) -> Result<(), Divergence> {
    let locked = matches!(cfg.serial_lock, SerialLockMode::ReaderWriter);
    if locked && report.config_switches == 0 {
        return Err(Divergence {
            seed,
            combo: cfg.combo(),
            detail: format!(
                "{prefix}switching schedule completed no switches despite a serial lock"
            ),
        });
    }
    if !locked && report.config_switches != 0 {
        return Err(Divergence {
            seed,
            combo: cfg.combo(),
            detail: format!(
                "{prefix}lock-free runtime reported {} completed switches",
                report.config_switches
            ),
        });
    }
    Ok(())
}

/// Runs one **write-heavy** barrier-stepped schedule ([`wh_txn_program`])
/// and checks it against the sequential model. On top of the ticket
/// oracle, the schedule must have actually exercised silent-store
/// elision — a write-heavy run that never elides means the optimization
/// is dead under that combination.
///
/// # Errors
///
/// Returns [`Divergence`] on model disagreement, or when the schedule
/// elided nothing despite its manufactured silent stores.
pub fn run_schedule_wh(seed: u64, cfg: &StressConfig) -> Result<StressReport, Divergence> {
    let (report, _, _) = run_schedule_impl(seed, cfg, false, wh_txn_program, false)?;
    if report.silent_elisions == 0 {
        return Err(Divergence {
            seed,
            combo: cfg.combo(),
            detail: "write-heavy schedule elided no silent stores — \
                     the elision path is dead under this combination"
                .into(),
        });
    }
    Ok(report)
}

/// [`run_schedule`] with a deliberately injected bug: after the sequential
/// replay, the model's cell 0 is bumped by one — exactly what the
/// concurrent state would look like if the runtime lost one update to that
/// cell. Exists to prove, in tests and from the stress binary's
/// `--inject-bug` flag, that a divergence is detected and reproduces
/// deterministically from its printed seed.
#[doc(hidden)]
pub fn run_schedule_sabotaged(seed: u64, cfg: &StressConfig) -> Result<StressReport, Divergence> {
    run_schedule_impl(seed, cfg, true, txn_program, false).map(|(r, _, _)| r)
}

/// Besides the report, returns each worker's clock-shard affinity (in
/// join order) and the runtime's final per-shard clock stats, so the
/// contended wrapper can cross-check shard attribution.
fn run_schedule_impl(
    seed: u64,
    cfg: &StressConfig,
    sabotage: bool,
    program: ProgramFn,
    switching: bool,
) -> Result<(StressReport, Vec<usize>, Vec<ClockShardStats>), Divergence> {
    assert!(cfg.threads > 0 && cfg.cells > 0 && cfg.txns_per_thread > 0);
    let rt = TmRuntime::builder()
        .algorithm(cfg.algorithm)
        .serial_lock(cfg.serial_lock)
        .contention_manager(cfg.contention)
        .build();
    let init = initial_values(seed, cfg.cells);
    let cells: Vec<TCell<u64>> = init.iter().copied().map(TCell::new).collect();
    let ticket = TCell::new(0u64);

    // Barrier-stepped rounds: every thread enters round r together; the
    // round length is drawn from the seed so different seeds produce
    // differently-chunked interleavings.
    let mut round_rng = SplitMix64::seed_from_u64(mix_seed(seed, 0x0107));
    let per_round = round_rng.gen_range(1usize..5);
    let rounds = cfg.txns_per_thread.div_ceil(per_round);
    let barrier = Barrier::new(cfg.threads);

    let before = rt.stats();
    // (ticket, thread, txn) for every committed transaction.
    let mut order: Vec<(u64, usize, usize)> = Vec::with_capacity(cfg.threads * cfg.txns_per_thread);
    let mut worker_shards: Vec<usize> = Vec::with_capacity(cfg.threads);
    let stop = AtomicBool::new(false);
    let mut switched = 0u64;
    std::thread::scope(|s| {
        let switcher = switching.then(|| {
            let rt = &rt;
            let stop = &stop;
            let locked = matches!(cfg.serial_lock, SerialLockMode::ReaderWriter);
            s.spawn(move || switcher_loop(rt, stop, seed, locked))
        });
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let rt = &rt;
            let cells = &cells;
            let ticket = &ticket;
            let barrier = &barrier;
            handles.push(s.spawn(move || {
                // Shard affinity is per OS thread; record it from inside.
                let shard = rt.current_thread_shard();
                let mut mine = Vec::with_capacity(cfg.txns_per_thread);
                let mut stagger = SplitMix64::seed_from_u64(mix_seed(seed, 0x57A6 + t as u64));
                for r in 0..rounds {
                    barrier.wait();
                    // A short seed-derived spin decorrelates which thread
                    // reaches the transactions first in each round.
                    for _ in 0..stagger.gen_range(0u32..64) {
                        std::hint::spin_loop();
                    }
                    let lo = r * per_round;
                    let hi = ((r + 1) * per_round).min(cfg.txns_per_thread);
                    for j in lo..hi {
                        let ops = program(seed, t, j, cfg);
                        let tk = rt.atomic(|tx| {
                            let tk = tx.fetch_add(ticket, 1)?;
                            for &op in &ops {
                                apply_tx(tx, cells, op)?;
                            }
                            Ok(tk)
                        });
                        mine.push((tk, t, j));
                    }
                }
                (mine, shard)
            }));
        }
        for h in handles {
            let (mine, shard) = h.join().expect("stress worker panicked");
            order.extend(mine);
            worker_shards.push(shard);
        }
        stop.store(true, Ordering::SeqCst);
        if let Some(h) = switcher {
            switched = h.join().expect("switcher panicked");
        }
    });
    let stats = rt.stats().since(&before);
    let shard_stats = rt.clock_shard_stats();

    let diverge = |detail: String| Divergence {
        seed,
        combo: cfg.combo(),
        detail,
    };

    // The tickets must be exactly 0..n — a gap or duplicate is a lost or
    // doubled ticket update, itself a serializability violation.
    let total = cfg.threads * cfg.txns_per_thread;
    order.sort_unstable();
    for (expect, &(tk, t, j)) in order.iter().enumerate() {
        if tk != expect as u64 {
            return Err(diverge(format!(
                "ticket sequence broken at position {expect}: got ticket {tk} \
                 (thread {t}, txn {j}) — lost or duplicated ticket update"
            )));
        }
    }
    if ticket.load_direct() != total as u64 {
        return Err(diverge(format!(
            "ticket cell ended at {} after {} transactions",
            ticket.load_direct(),
            total
        )));
    }

    // Sequential replay in ticket order.
    let mut model = init;
    for &(_tk, t, j) in &order {
        for op in program(seed, t, j, cfg) {
            apply_model(&mut model, op);
        }
    }
    if sabotage {
        model[0] = model[0].wrapping_add(1);
    }
    for (i, cell) in cells.iter().enumerate() {
        let actual = cell.load_direct();
        if actual != model[i] {
            return Err(diverge(format!(
                "cell {i}: concurrent result {actual:#x} != sequential model {:#x}",
                model[i]
            )));
        }
    }
    if stats.config_switches != switched {
        return Err(diverge(format!(
            "runtime counted {} config switches, the switcher completed {}",
            stats.config_switches, switched
        )));
    }
    Ok((
        StressReport {
            combo: cfg.combo(),
            commits: stats.commits,
            aborts: stats.aborts,
            silent_elisions: stats.silent_store_elisions,
            config_switches: stats.config_switches,
        },
        worker_shards,
        shard_stats,
    ))
}

/// Chaos mode: the same programs and the same ticket oracle as
/// [`run_schedule`], but every worker thread arms `tm::fault` with a
/// seed-derived stream, so the runtime is bombarded with spurious aborts,
/// bounded delays, and injected panics at its five fault sites while the
/// serializability check stays on.
///
/// Compiled only with the `chaos` feature (which turns on `tm/fault`).
#[cfg(feature = "chaos")]
pub mod chaos {
    use super::*;
    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use tm::fault::{self, FaultPlan};

    /// One passed chaos schedule: the ordinary report plus how hard the
    /// fault layer actually hit the runtime.
    #[derive(Clone, Debug)]
    pub struct ChaosReport {
        /// The ordinary schedule measurements.
        pub report: StressReport,
        /// Fault actions (aborts + delays + panics) injected across all
        /// worker threads.
        pub injected: u64,
        /// Attempts torn down by a panic unwinding through the runtime.
        pub panic_aborts: u64,
    }

    /// The plan the stress binary's `--chaos` mode uses: every site armed,
    /// with per-site-visit rates of ~1.6% spurious abort, ~3% bounded
    /// delay, and ~0.4% panic. A transaction visits a dozen-odd sites per
    /// attempt, so most transactions see at least one fault while every
    /// retry loop still terminates quickly.
    pub const fn default_plan() -> FaultPlan {
        FaultPlan::all_sites(1024, 2048, 256)
    }

    /// Injected panics unwind through `catch_unwind` thousands of times
    /// per schedule; the default panic hook would print a backtrace header
    /// for each. Install (once) a hook that swallows exactly the fault
    /// layer's own payloads and forwards everything else.
    fn silence_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("tm::fault injected panic"));
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    /// Runs one barrier-stepped schedule with every worker thread armed
    /// for fault injection, then checks the ticket oracle and the
    /// sequential model exactly as [`run_schedule`] does.
    ///
    /// Injected panics are caught per transaction and classified with the
    /// thread's commit tally: a panic whose attempt never committed
    /// (body/validation/commit-path injection) retries the same program;
    /// a panic *after* the commit point (an injected handler panic) keeps
    /// its ticket — the data is committed and must appear in the serial
    /// order exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`Divergence`] when the committed state disagrees with the
    /// model — under chaos that means a fault unwound the runtime into an
    /// inconsistent state (leaked orec, half-applied undo, ...).
    pub fn run_schedule_chaos(
        seed: u64,
        cfg: &StressConfig,
        plan: FaultPlan,
    ) -> Result<ChaosReport, Divergence> {
        run_schedule_chaos_impl(seed, cfg, plan, txn_program, false).map(|(r, _, _)| r)
    }

    /// [`super::run_schedule_switching`] under fault injection: the
    /// controller stand-in keeps flipping the algorithm + contention
    /// manager while every worker is armed with spurious aborts, delays,
    /// and panics — the adaptive runtime's worst afternoon. The same
    /// ticket oracle and switch post-conditions apply.
    ///
    /// # Errors
    ///
    /// Returns [`Divergence`] on model disagreement or broken switch
    /// accounting.
    pub fn run_schedule_switching_chaos(
        seed: u64,
        cfg: &StressConfig,
        plan: FaultPlan,
    ) -> Result<ChaosReport, Divergence> {
        let (r, _, _) = run_schedule_chaos_impl(seed, cfg, plan, txn_program, true)?;
        check_switch_report(seed, cfg, &r.report, "[chaos] ")?;
        Ok(r)
    }

    /// [`run_schedule_switching_chaos`] across every [`combos`]
    /// combination.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Divergence`].
    pub fn run_matrix_switching_chaos(
        seed: u64,
        base: &StressConfig,
        plan: FaultPlan,
    ) -> Result<Vec<ChaosReport>, Divergence> {
        let mut reports = Vec::new();
        for (algorithm, serial_lock, contention) in combos() {
            let cfg = StressConfig {
                algorithm,
                serial_lock,
                contention,
                ..base.clone()
            };
            reports.push(run_schedule_switching_chaos(seed, &cfg, plan)?);
        }
        Ok(reports)
    }

    /// [`run_schedule_wh`] under fault injection: write-heavy programs
    /// with manufactured silent stores, every worker armed, the same
    /// ticket oracle — and the same demand that silent-store elision
    /// actually fired. Elision under chaos is the scary case: an elided
    /// write is logged as a *read*, so a spurious abort or injected panic
    /// between the elision decision and the commit must still roll the
    /// attempt back to a state where the re-execution can decide
    /// differently.
    ///
    /// # Errors
    ///
    /// Returns [`Divergence`] on model disagreement or when nothing was
    /// elided.
    pub fn run_schedule_wh_chaos(
        seed: u64,
        cfg: &StressConfig,
        plan: FaultPlan,
    ) -> Result<ChaosReport, Divergence> {
        let (r, _, _) = run_schedule_chaos_impl(seed, cfg, plan, wh_txn_program, false)?;
        if r.report.silent_elisions == 0 {
            return Err(Divergence {
                seed,
                combo: cfg.combo(),
                detail: "[chaos] write-heavy schedule elided no silent stores — \
                         the elision path is dead under this combination"
                    .into(),
            });
        }
        Ok(r)
    }

    /// [`run_schedule_wh_chaos`] across every [`combos`] combination.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Divergence`].
    pub fn run_matrix_wh_chaos(
        seed: u64,
        base: &StressConfig,
        plan: FaultPlan,
    ) -> Result<Vec<ChaosReport>, Divergence> {
        let mut reports = Vec::new();
        for (algorithm, serial_lock, contention) in combos() {
            let cfg = StressConfig {
                algorithm,
                serial_lock,
                contention,
                ..base.clone()
            };
            reports.push(run_schedule_wh_chaos(seed, &cfg, plan)?);
        }
        Ok(reports)
    }

    fn run_schedule_chaos_impl(
        seed: u64,
        cfg: &StressConfig,
        plan: FaultPlan,
        program: ProgramFn,
        switching: bool,
    ) -> Result<(ChaosReport, Vec<usize>, Vec<ClockShardStats>), Divergence> {
        assert!(cfg.threads > 0 && cfg.cells > 0 && cfg.txns_per_thread > 0);
        silence_injected_panics();
        let rt = TmRuntime::builder()
            .algorithm(cfg.algorithm)
            .serial_lock(cfg.serial_lock)
            .contention_manager(cfg.contention)
            .build();
        let init = initial_values(seed, cfg.cells);
        let cells: Vec<TCell<u64>> = init.iter().copied().map(TCell::new).collect();
        let ticket = TCell::new(0u64);

        let mut round_rng = SplitMix64::seed_from_u64(mix_seed(seed, 0x0107));
        let per_round = round_rng.gen_range(1usize..5);
        let rounds = cfg.txns_per_thread.div_ceil(per_round);
        let barrier = Barrier::new(cfg.threads);

        let before = rt.stats();
        let mut order: Vec<(u64, usize, usize)> =
            Vec::with_capacity(cfg.threads * cfg.txns_per_thread);
        let mut injected = 0u64;
        let mut worker_shards: Vec<usize> = Vec::with_capacity(cfg.threads);
        let stop = AtomicBool::new(false);
        let mut switched = 0u64;
        std::thread::scope(|s| {
            let switcher = switching.then(|| {
                let rt = &rt;
                let stop = &stop;
                let locked = matches!(cfg.serial_lock, SerialLockMode::ReaderWriter);
                // The switcher itself stays unarmed: faults belong in the
                // transactional paths it is quiescing, not in the quiesce.
                s.spawn(move || switcher_loop(rt, stop, seed, locked))
            });
            let mut handles = Vec::new();
            for t in 0..cfg.threads {
                let rt = &rt;
                let cells = &cells;
                let ticket = &ticket;
                let barrier = &barrier;
                handles.push(s.spawn(move || {
                    fault::arm_thread(mix_seed(seed, 0xFA07 + t as u64), plan);
                    let shard = rt.current_thread_shard();
                    let mut mine = Vec::with_capacity(cfg.txns_per_thread);
                    let mut stagger =
                        SplitMix64::seed_from_u64(mix_seed(seed, 0x57A6 + t as u64));
                    // Ticket captured by the attempt that ends up
                    // committing, read back when a post-commit handler
                    // panic carries the ticket away from `rt.atomic`.
                    let tk_cell = Cell::new(u64::MAX);
                    for r in 0..rounds {
                        barrier.wait();
                        for _ in 0..stagger.gen_range(0u32..64) {
                            std::hint::spin_loop();
                        }
                        let lo = r * per_round;
                        let hi = ((r + 1) * per_round).min(cfg.txns_per_thread);
                        for j in lo..hi {
                            let ops = program(seed, t, j, cfg);
                            // A seed-derived quarter of the transactions
                            // register no-op handlers so the Handler fault
                            // site (handler panics after the commit point)
                            // gets exercised too.
                            let with_handlers =
                                mix_seed(mix_seed(seed, 0x4A0D + t as u64), j as u64) & 3 == 0;
                            let tk = loop {
                                // Reset the tally so the commit/abort
                                // delta below covers exactly this call.
                                let _ = tm::take_thread_tally();
                                tk_cell.set(u64::MAX);
                                let attempt = catch_unwind(AssertUnwindSafe(|| {
                                    rt.atomic(|tx| {
                                        let tk = tx.fetch_add(ticket, 1)?;
                                        tk_cell.set(tk);
                                        if with_handlers {
                                            tx.on_commit(|| {});
                                            tx.on_abort(|| {});
                                        }
                                        for &op in &ops {
                                            apply_tx(tx, cells, op)?;
                                        }
                                        Ok(tk)
                                    })
                                }));
                                match attempt {
                                    Ok(tk) => break tk,
                                    Err(_injected_panic) => {
                                        if tm::take_thread_tally().commits > 0 {
                                            // The attempt committed before
                                            // the (handler) panic: its
                                            // effects are durable, so its
                                            // ticket must be recorded.
                                            break tk_cell.get();
                                        }
                                        // Pre-commit panic: fully rolled
                                        // back, retry the same program.
                                    }
                                }
                            };
                            mine.push((tk, t, j));
                        }
                    }
                    let hits = fault::injected_count();
                    fault::disarm_thread();
                    (mine, hits, shard)
                }));
            }
            for h in handles {
                let (mine, hits, shard) =
                    h.join().expect("chaos worker escaped its catch_unwind");
                order.extend(mine);
                injected += hits;
                worker_shards.push(shard);
            }
            stop.store(true, Ordering::SeqCst);
            if let Some(h) = switcher {
                switched = h.join().expect("switcher panicked");
            }
        });
        let stats = rt.stats().since(&before);
        let shard_stats = rt.clock_shard_stats();

        let diverge = |detail: String| Divergence {
            seed,
            combo: cfg.combo(),
            detail,
        };

        let total = cfg.threads * cfg.txns_per_thread;
        order.sort_unstable();
        for (expect, &(tk, t, j)) in order.iter().enumerate() {
            if tk != expect as u64 {
                return Err(diverge(format!(
                    "[chaos] ticket sequence broken at position {expect}: got ticket {tk} \
                     (thread {t}, txn {j}) — lost or duplicated ticket update"
                )));
            }
        }
        if ticket.load_direct() != total as u64 {
            return Err(diverge(format!(
                "[chaos] ticket cell ended at {} after {} transactions",
                ticket.load_direct(),
                total
            )));
        }

        let mut model = init;
        for &(_tk, t, j) in &order {
            for op in program(seed, t, j, cfg) {
                apply_model(&mut model, op);
            }
        }
        for (i, cell) in cells.iter().enumerate() {
            let actual = cell.load_direct();
            if actual != model[i] {
                return Err(diverge(format!(
                    "[chaos] cell {i}: concurrent result {actual:#x} != sequential model {:#x}",
                    model[i]
                )));
            }
        }
        if stats.config_switches != switched {
            return Err(diverge(format!(
                "[chaos] runtime counted {} config switches, the switcher completed {}",
                stats.config_switches, switched
            )));
        }
        Ok((
            ChaosReport {
                report: StressReport {
                    combo: cfg.combo(),
                    commits: stats.commits,
                    aborts: stats.aborts,
                    silent_elisions: stats.silent_store_elisions,
                    config_switches: stats.config_switches,
                },
                injected,
                panic_aborts: stats.panic_aborts,
            },
            worker_shards,
            shard_stats,
        ))
    }

    /// One passed contended-commit chaos schedule.
    #[derive(Clone, Debug)]
    pub struct ContendedChaosReport {
        /// The contended measurements, shard attribution included.
        pub report: ContendedReport,
        /// Fault actions injected across all worker threads.
        pub injected: u64,
        /// Attempts torn down by a panic unwinding through the runtime.
        pub panic_aborts: u64,
    }

    /// [`run_schedule_contended`] under fault injection: disjoint write
    /// sets, every worker armed, the ticket oracle on — and the per-shard
    /// clock stats must still attribute commit ticks to every shard the
    /// workers ran on, even with spurious aborts and panics landing in
    /// the middle of the commit-tick CAS loop.
    ///
    /// # Errors
    ///
    /// Returns [`Divergence`] on model disagreement or broken shard
    /// attribution.
    pub fn run_schedule_contended_chaos(
        seed: u64,
        cfg: &StressConfig,
        plan: FaultPlan,
    ) -> Result<ContendedChaosReport, Divergence> {
        let (r, worker_shards, shard_stats) =
            run_schedule_chaos_impl(seed, cfg, plan, contended_txn_program, false)?;
        check_shard_divergence(seed, cfg, &worker_shards, &shard_stats, "[chaos] ")?;
        Ok(ContendedChaosReport {
            report: contended_report(r.report, worker_shards, shard_stats),
            injected: r.injected,
            panic_aborts: r.panic_aborts,
        })
    }

    /// [`run_schedule_contended_chaos`] across every [`combos`]
    /// combination.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Divergence`].
    pub fn run_matrix_contended_chaos(
        seed: u64,
        base: &StressConfig,
        plan: FaultPlan,
    ) -> Result<Vec<ContendedChaosReport>, Divergence> {
        let mut reports = Vec::new();
        for (algorithm, serial_lock, contention) in combos() {
            let cfg = StressConfig {
                algorithm,
                serial_lock,
                contention,
                ..base.clone()
            };
            reports.push(run_schedule_contended_chaos(seed, &cfg, plan)?);
        }
        Ok(reports)
    }

    /// [`run_schedule_chaos`] across every [`combos`] combination.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Divergence`].
    pub fn run_matrix_chaos(
        seed: u64,
        base: &StressConfig,
        plan: FaultPlan,
    ) -> Result<Vec<ChaosReport>, Divergence> {
        let mut reports = Vec::new();
        for (algorithm, serial_lock, contention) in combos() {
            let cfg = StressConfig {
                algorithm,
                serial_lock,
                contention,
                ..base.clone()
            };
            reports.push(run_schedule_chaos(seed, &cfg, plan)?);
        }
        Ok(reports)
    }

    /// One passed read-mostly chaos schedule.
    #[derive(Clone, Debug)]
    pub struct RoChaosReport {
        /// The read-mostly measurements.
        pub report: RoStressReport,
        /// Fault actions injected across all worker threads.
        pub injected: u64,
        /// Attempts torn down by a panic unwinding through the runtime.
        pub panic_aborts: u64,
    }

    /// [`run_schedule_ro`] under fault injection: the same promotion
    /// programs and both read-mostly oracles, with every worker thread
    /// armed. Injected panics are classified exactly as in
    /// [`run_schedule_chaos`]; a reader whose attempt committed but whose
    /// snapshot was carried away by a post-commit panic just loses its
    /// sample (readers register no handlers, so this is a defensive path).
    ///
    /// # Errors
    ///
    /// Returns [`Divergence`] when either oracle disagrees — under chaos
    /// that means a fault unwound the fast lane or the promotion path into
    /// an inconsistent state.
    pub fn run_schedule_ro_chaos(
        seed: u64,
        cfg: &StressConfig,
        plan: FaultPlan,
    ) -> Result<RoChaosReport, Divergence> {
        assert!(cfg.threads > 0 && cfg.cells > 0 && cfg.txns_per_thread > 0);
        silence_injected_panics();
        let rt = TmRuntime::builder()
            .algorithm(cfg.algorithm)
            .serial_lock(cfg.serial_lock)
            .contention_manager(cfg.contention)
            .build();
        let init = initial_values(seed, cfg.cells);
        let cells: Vec<TCell<u64>> = init.iter().copied().map(TCell::new).collect();
        let ticket = TCell::new(0u64);

        let mut round_rng = SplitMix64::seed_from_u64(mix_seed(seed, 0x0107));
        let per_round = round_rng.gen_range(1usize..5);
        let rounds = cfg.txns_per_thread.div_ceil(per_round);
        let barrier = Barrier::new(cfg.threads);

        let before = rt.stats();
        let mut writes: Vec<(u64, usize, usize)> = Vec::new();
        let mut snaps: Vec<(u64, Vec<u64>)> = Vec::new();
        let mut injected = 0u64;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..cfg.threads {
                let rt = &rt;
                let cells = &cells;
                let ticket = &ticket;
                let barrier = &barrier;
                handles.push(s.spawn(move || {
                    fault::arm_thread(mix_seed(seed, 0xFA07 + t as u64), plan);
                    let mut my_writes = Vec::new();
                    let mut my_snaps = Vec::new();
                    let mut stagger =
                        SplitMix64::seed_from_u64(mix_seed(seed, 0x57A6 + t as u64));
                    let tk_cell = Cell::new(u64::MAX);
                    for r in 0..rounds {
                        barrier.wait();
                        for _ in 0..stagger.gen_range(0u32..64) {
                            std::hint::spin_loop();
                        }
                        let lo = r * per_round;
                        let hi = ((r + 1) * per_round).min(cfg.txns_per_thread);
                        for j in lo..hi {
                            if ro_txn_promotes(seed, t, j) {
                                let pre = ro_pre_reads(seed, t, j, cfg);
                                let ops = txn_program(seed, t, j, cfg);
                                let with_handlers =
                                    mix_seed(mix_seed(seed, 0x4A0D + t as u64), j as u64) & 3
                                        == 0;
                                let tk = loop {
                                    let _ = tm::take_thread_tally();
                                    tk_cell.set(u64::MAX);
                                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                                        rt.atomic_ro(|tx| {
                                            let mut sink = 0u64;
                                            for &i in &pre {
                                                sink = sink.wrapping_add(tx.read(&cells[i])?);
                                            }
                                            std::hint::black_box(sink);
                                            let tk = tx.fetch_add(ticket, 1)?;
                                            tk_cell.set(tk);
                                            if with_handlers {
                                                tx.on_commit(|| {});
                                                tx.on_abort(|| {});
                                            }
                                            for &op in &ops {
                                                apply_tx(tx, cells, op)?;
                                            }
                                            Ok(tk)
                                        })
                                    }));
                                    match attempt {
                                        Ok(tk) => break tk,
                                        Err(_injected_panic) => {
                                            if tm::take_thread_tally().commits > 0 {
                                                break tk_cell.get();
                                            }
                                        }
                                    }
                                };
                                my_writes.push((tk, t, j));
                            } else {
                                let obs = loop {
                                    let _ = tm::take_thread_tally();
                                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                                        rt.atomic_ro(|tx| {
                                            let tk = tx.read(ticket)?;
                                            let mut snap = Vec::with_capacity(cells.len());
                                            for c in cells.iter() {
                                                snap.push(tx.read(c)?);
                                            }
                                            Ok((tk, snap))
                                        })
                                    }));
                                    match attempt {
                                        Ok(o) => break Some(o),
                                        Err(_injected_panic) => {
                                            if tm::take_thread_tally().commits > 0 {
                                                break None;
                                            }
                                        }
                                    }
                                };
                                if let Some(o) = obs {
                                    my_snaps.push(o);
                                }
                            }
                        }
                    }
                    let hits = fault::injected_count();
                    fault::disarm_thread();
                    (my_writes, my_snaps, hits)
                }));
            }
            for h in handles {
                let (w, sn, hits) =
                    h.join().expect("read-mostly chaos worker escaped its catch_unwind");
                writes.extend(w);
                snaps.extend(sn);
                injected += hits;
            }
        });
        let stats = rt.stats().since(&before);

        let checked = check_ro_oracle(
            seed,
            cfg,
            init,
            &cells,
            &ticket,
            writes,
            snaps,
            false,
            "[ro-chaos] ",
        )?;
        if stats.ro_fast_commits == 0 || stats.ro_promotions == 0 {
            return Err(Divergence {
                seed,
                combo: cfg.combo(),
                detail: format!(
                    "[ro-chaos] schedule failed to exercise the fast lane: \
                     {} fast commits, {} promotions",
                    stats.ro_fast_commits, stats.ro_promotions
                ),
            });
        }
        Ok(RoChaosReport {
            report: RoStressReport {
                report: StressReport {
                    combo: cfg.combo(),
                    commits: stats.commits,
                    aborts: stats.aborts,
                    silent_elisions: stats.silent_store_elisions,
                    config_switches: stats.config_switches,
                },
                ro_fast_commits: stats.ro_fast_commits,
                ro_promotions: stats.ro_promotions,
                snapshot_extensions: stats.snapshot_extensions,
                snapshots_checked: checked,
            },
            injected,
            panic_aborts: stats.panic_aborts,
        })
    }

    /// [`run_schedule_ro_chaos`] across every [`combos`] combination.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Divergence`].
    pub fn run_matrix_ro_chaos(
        seed: u64,
        base: &StressConfig,
        plan: FaultPlan,
    ) -> Result<Vec<RoChaosReport>, Divergence> {
        let mut reports = Vec::new();
        for (algorithm, serial_lock, contention) in combos() {
            let cfg = StressConfig {
                algorithm,
                serial_lock,
                contention,
                ..base.clone()
            };
            reports.push(run_schedule_ro_chaos(seed, &cfg, plan)?);
        }
        Ok(reports)
    }
}

/// Every runtime combination the stress harness exercises.
/// `SerializeAfter` requires the serial lock, so it is only paired with
/// [`SerialLockMode::ReaderWriter`]; the other managers run under both
/// modes.
pub fn combos() -> Vec<(Algorithm, SerialLockMode, ContentionManager)> {
    let mut v = Vec::new();
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        for cm in [
            ContentionManager::GCC_DEFAULT,
            ContentionManager::None,
            ContentionManager::Backoff { max_shift: 8 },
            ContentionManager::HOURGLASS_128,
        ] {
            v.push((algo, SerialLockMode::ReaderWriter, cm));
        }
        for cm in [
            ContentionManager::None,
            ContentionManager::Backoff { max_shift: 8 },
            ContentionManager::HOURGLASS_128,
        ] {
            v.push((algo, SerialLockMode::None, cm));
        }
    }
    v
}

/// Runs [`run_schedule`] for `seed` across every [`combos`] combination,
/// stopping at the first divergence.
///
/// # Errors
///
/// Propagates the first [`Divergence`].
pub fn run_matrix(seed: u64, base: &StressConfig) -> Result<Vec<StressReport>, Divergence> {
    let mut reports = Vec::new();
    for (algorithm, serial_lock, contention) in combos() {
        let cfg = StressConfig {
            algorithm,
            serial_lock,
            contention,
            ..base.clone()
        };
        reports.push(run_schedule(seed, &cfg)?);
    }
    Ok(reports)
}

/// Runs [`run_schedule_switching`] for `seed` across every [`combos`]
/// combination, stopping at the first divergence. The 12 serial-locked
/// combinations must each cross at least one live switch; the 9
/// lock-free ones prove the refusal path instead.
///
/// # Errors
///
/// Propagates the first [`Divergence`].
pub fn run_matrix_switching(
    seed: u64,
    base: &StressConfig,
) -> Result<Vec<StressReport>, Divergence> {
    let mut reports = Vec::new();
    for (algorithm, serial_lock, contention) in combos() {
        let cfg = StressConfig {
            algorithm,
            serial_lock,
            contention,
            ..base.clone()
        };
        reports.push(run_schedule_switching(seed, &cfg)?);
    }
    Ok(reports)
}

/// Runs [`run_schedule_wh`] for `seed` across every [`combos`]
/// combination, stopping at the first divergence (including a combination
/// that elided nothing).
///
/// # Errors
///
/// Propagates the first [`Divergence`].
pub fn run_matrix_wh(seed: u64, base: &StressConfig) -> Result<Vec<StressReport>, Divergence> {
    let mut reports = Vec::new();
    for (algorithm, serial_lock, contention) in combos() {
        let cfg = StressConfig {
            algorithm,
            serial_lock,
            contention,
            ..base.clone()
        };
        reports.push(run_schedule_wh(seed, &cfg)?);
    }
    Ok(reports)
}

// ---------------------------------------------------------------------------
// Contended-commit schedules: disjoint write sets, shared commit machinery.
// ---------------------------------------------------------------------------

/// A passed contended-commit schedule's measurements.
#[derive(Clone, Debug)]
pub struct ContendedReport {
    /// The ordinary measurements.
    pub report: StressReport,
    /// Distinct clock shards the worker threads mapped onto.
    pub shards_used: usize,
    /// Commit/rollback ticks per clock shard at the end of the schedule.
    pub shard_ticks: Vec<u64>,
    /// Same-shard clock CAS retries summed across shards.
    pub clock_cas_retries: u64,
}

/// The shard-stat divergence oracle for contended schedules: every clock
/// shard that a worker thread was pinned to must show commit ticks — a
/// silent shard means per-shard attribution broke (a worker's commits
/// were counted against somebody else's cache line, or not at all).
/// NOrec commits through the sequence lock, never the sharded clock, so
/// the check is skipped there.
fn check_shard_divergence(
    seed: u64,
    cfg: &StressConfig,
    worker_shards: &[usize],
    shard_stats: &[ClockShardStats],
    tag: &str,
) -> Result<(), Divergence> {
    if matches!(cfg.algorithm, Algorithm::Norec) {
        return Ok(());
    }
    for &k in worker_shards {
        if shard_stats[k].ticks == 0 {
            return Err(Divergence {
                seed,
                combo: cfg.combo(),
                detail: format!(
                    "{tag}worker pinned to clock shard {k} committed {} transactions \
                     but the shard's tick counter never moved — per-shard stats \
                     diverged from thread affinity",
                    cfg.txns_per_thread
                ),
            });
        }
    }
    Ok(())
}

fn contended_report(
    report: StressReport,
    mut worker_shards: Vec<usize>,
    shard_stats: Vec<ClockShardStats>,
) -> ContendedReport {
    worker_shards.sort_unstable();
    worker_shards.dedup();
    ContendedReport {
        report,
        shards_used: worker_shards.len(),
        clock_cas_retries: shard_stats.iter().map(|s| s.cas_retries).sum(),
        shard_ticks: shard_stats.into_iter().map(|s| s.ticks).collect(),
    }
}

/// Runs one **contended-commit** barrier-stepped schedule
/// ([`contended_txn_program`]): worker write sets are disjoint blocks, so
/// the threads fight over the ticket cell and the commit machinery —
/// clock shards, orec stripes, the NOrec seqlock — instead of data. On
/// top of the ticket oracle, the per-shard clock stats must attribute
/// commit ticks to every shard the workers actually ran on
/// ([`check_shard_divergence`]).
///
/// # Errors
///
/// Returns [`Divergence`] on model disagreement or broken shard
/// attribution.
pub fn run_schedule_contended(seed: u64, cfg: &StressConfig) -> Result<ContendedReport, Divergence> {
    let (report, worker_shards, shard_stats) =
        run_schedule_impl(seed, cfg, false, contended_txn_program, false)?;
    check_shard_divergence(seed, cfg, &worker_shards, &shard_stats, "")?;
    Ok(contended_report(report, worker_shards, shard_stats))
}

/// Runs [`run_schedule_contended`] for `seed` across every [`combos`]
/// combination, stopping at the first divergence.
///
/// # Errors
///
/// Propagates the first [`Divergence`].
pub fn run_matrix_contended(
    seed: u64,
    base: &StressConfig,
) -> Result<Vec<ContendedReport>, Divergence> {
    let mut reports = Vec::new();
    for (algorithm, serial_lock, contention) in combos() {
        let cfg = StressConfig {
            algorithm,
            serial_lock,
            contention,
            ..base.clone()
        };
        reports.push(run_schedule_contended(seed, &cfg)?);
    }
    Ok(reports)
}

// ---------------------------------------------------------------------------
// Read-mostly schedules: promotion coverage for the read-only fast lane.
// ---------------------------------------------------------------------------

/// Whether transaction `txn` of thread `thread` in the read-mostly schedule
/// writes. A seed-derived quarter do — they enter through `atomic_ro` like
/// everyone else and promote mid-flight at their first write; the other
/// three quarters stay pure fast-lane readers end to end.
pub fn ro_txn_promotes(seed: u64, thread: usize, txn: usize) -> bool {
    mix_seed(mix_seed(seed, 0x6904 + thread as u64), txn as u64) & 3 == 0
}

/// The cells a promoter reads *before* its promoting write. These populate
/// the read log while the attempt is still on the fast lane, so the
/// promoted commit must carry them over and revalidate them like any other
/// read.
pub fn ro_pre_reads(seed: u64, thread: usize, txn: usize, cfg: &StressConfig) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(mix_seed(
        mix_seed(seed, 0x9E4D + thread as u64),
        txn as u64 + 1,
    ));
    let n = rng.gen_range(1usize..4);
    (0..n).map(|_| rng.gen_range(0..cfg.cells)).collect()
}

/// A passed read-mostly schedule's measurements.
#[derive(Clone, Debug)]
pub struct RoStressReport {
    /// The ordinary measurements; `commits` covers readers and promoters.
    pub report: StressReport,
    /// Committed transactions that held the read-only fast lane to the end.
    pub ro_fast_commits: u64,
    /// Attempts that entered read-only and promoted at their first write.
    pub ro_promotions: u64,
    /// Snapshot extensions the runtime performed during the schedule.
    pub snapshot_extensions: u64,
    /// Reader snapshots validated against the ticket-ordered model prefix.
    pub snapshots_checked: u64,
}

/// Runs one barrier-stepped **read-mostly** schedule: every transaction
/// begins on the read-only fast lane (`atomic_ro`); a seed-derived quarter
/// promote mid-flight by taking a ticket and writing, the rest snapshot the
/// ticket cell plus the whole heap without ever leaving the fast lane.
///
/// Two oracles run:
///
/// * **Promoters** — the usual ticket oracle: committed tickets must be
///   exactly `0..n`, and replaying the promoted programs in ticket order
///   must land on the final heap. This proves reads accumulated *before*
///   the promotion are still validated by the full commit.
/// * **Readers** — snapshot position: a fast-lane reader that observed
///   ticket value `t` serialized after exactly the promoters holding
///   tickets `0..t`, so its snapshot must equal the model replayed through
///   that prefix. A stale snapshot extension, a torn read, or a write
///   leaking from an uncommitted promoter all break the equality.
///
/// # Errors
///
/// Returns [`Divergence`] — carrying the replay seed — when either oracle
/// disagrees, or when the schedule failed to exercise the fast lane at all
/// (zero fast commits / zero promotions).
pub fn run_schedule_ro(seed: u64, cfg: &StressConfig) -> Result<RoStressReport, Divergence> {
    run_schedule_ro_impl(seed, cfg, false)
}

/// [`run_schedule_ro`] with the same deliberate bug as
/// [`run_schedule_sabotaged`]: one update to cell 0 is dropped from the
/// model, so the schedule must diverge — proof the read-mostly oracle has
/// teeth and replays from its printed seed.
#[doc(hidden)]
pub fn run_schedule_ro_sabotaged(
    seed: u64,
    cfg: &StressConfig,
) -> Result<RoStressReport, Divergence> {
    run_schedule_ro_impl(seed, cfg, true)
}

fn run_schedule_ro_impl(
    seed: u64,
    cfg: &StressConfig,
    sabotage: bool,
) -> Result<RoStressReport, Divergence> {
    assert!(cfg.threads > 0 && cfg.cells > 0 && cfg.txns_per_thread > 0);
    let rt = TmRuntime::builder()
        .algorithm(cfg.algorithm)
        .serial_lock(cfg.serial_lock)
        .contention_manager(cfg.contention)
        .build();
    let init = initial_values(seed, cfg.cells);
    let cells: Vec<TCell<u64>> = init.iter().copied().map(TCell::new).collect();
    let ticket = TCell::new(0u64);

    let mut round_rng = SplitMix64::seed_from_u64(mix_seed(seed, 0x0107));
    let per_round = round_rng.gen_range(1usize..5);
    let rounds = cfg.txns_per_thread.div_ceil(per_round);
    let barrier = Barrier::new(cfg.threads);

    let before = rt.stats();
    let mut writes: Vec<(u64, usize, usize)> = Vec::new();
    let mut snaps: Vec<(u64, Vec<u64>)> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let rt = &rt;
            let cells = &cells;
            let ticket = &ticket;
            let barrier = &barrier;
            handles.push(s.spawn(move || {
                let mut my_writes = Vec::new();
                let mut my_snaps = Vec::new();
                let mut stagger = SplitMix64::seed_from_u64(mix_seed(seed, 0x57A6 + t as u64));
                for r in 0..rounds {
                    barrier.wait();
                    for _ in 0..stagger.gen_range(0u32..64) {
                        std::hint::spin_loop();
                    }
                    let lo = r * per_round;
                    let hi = ((r + 1) * per_round).min(cfg.txns_per_thread);
                    for j in lo..hi {
                        if ro_txn_promotes(seed, t, j) {
                            let pre = ro_pre_reads(seed, t, j, cfg);
                            let ops = txn_program(seed, t, j, cfg);
                            let tk = rt.atomic_ro(|tx| {
                                // Fast-lane reads first: they must survive
                                // the promotion and be revalidated.
                                let mut sink = 0u64;
                                for &i in &pre {
                                    sink = sink.wrapping_add(tx.read(&cells[i])?);
                                }
                                std::hint::black_box(sink);
                                // First write of the attempt: promotes.
                                let tk = tx.fetch_add(ticket, 1)?;
                                for &op in &ops {
                                    apply_tx(tx, cells, op)?;
                                }
                                Ok(tk)
                            });
                            my_writes.push((tk, t, j));
                        } else {
                            my_snaps.push(rt.atomic_ro(|tx| {
                                let tk = tx.read(ticket)?;
                                let mut snap = Vec::with_capacity(cells.len());
                                for c in cells.iter() {
                                    snap.push(tx.read(c)?);
                                }
                                Ok((tk, snap))
                            }));
                        }
                    }
                }
                (my_writes, my_snaps)
            }));
        }
        for h in handles {
            let (w, sn) = h.join().expect("read-mostly stress worker panicked");
            writes.extend(w);
            snaps.extend(sn);
        }
    });
    let stats = rt.stats().since(&before);

    let checked =
        check_ro_oracle(seed, cfg, init, &cells, &ticket, writes, snaps, sabotage, "[ro] ")?;
    if stats.ro_fast_commits == 0 || stats.ro_promotions == 0 {
        return Err(Divergence {
            seed,
            combo: cfg.combo(),
            detail: format!(
                "read-mostly schedule failed to exercise the fast lane: \
                 {} fast commits, {} promotions",
                stats.ro_fast_commits, stats.ro_promotions
            ),
        });
    }
    Ok(RoStressReport {
        report: StressReport {
            combo: cfg.combo(),
            commits: stats.commits,
            aborts: stats.aborts,
            silent_elisions: stats.silent_store_elisions,
            config_switches: stats.config_switches,
        },
        ro_fast_commits: stats.ro_fast_commits,
        ro_promotions: stats.ro_promotions,
        snapshot_extensions: stats.snapshot_extensions,
        snapshots_checked: checked,
    })
}

/// The read-mostly oracle, shared by the plain and chaos variants: ticket
/// contiguity for promoters, prefix-equality for reader snapshots, final
/// heap vs sequential model. Returns how many reader snapshots were
/// checked.
#[allow(clippy::too_many_arguments)]
fn check_ro_oracle(
    seed: u64,
    cfg: &StressConfig,
    init: Vec<u64>,
    cells: &[TCell<u64>],
    ticket: &TCell<u64>,
    mut writes: Vec<(u64, usize, usize)>,
    mut snaps: Vec<(u64, Vec<u64>)>,
    sabotage: bool,
    tag: &str,
) -> Result<u64, Divergence> {
    let diverge = |detail: String| Divergence {
        seed,
        combo: cfg.combo(),
        detail,
    };

    let total = writes.len();
    writes.sort_unstable();
    for (expect, &(tk, t, j)) in writes.iter().enumerate() {
        if tk != expect as u64 {
            return Err(diverge(format!(
                "{tag}ticket sequence broken at position {expect}: got ticket {tk} \
                 (thread {t}, txn {j}) — lost or duplicated promoted write"
            )));
        }
    }
    if ticket.load_direct() != total as u64 {
        return Err(diverge(format!(
            "{tag}ticket cell ended at {} after {} promoted transactions",
            ticket.load_direct(),
            total
        )));
    }

    // Replay promoters in ticket order; each reader snapshot must equal
    // the model exactly at its observed prefix.
    let check_at = |model: &[u64], tk: u64, snap: &[u64]| -> Result<(), Divergence> {
        for (i, (&got, &want)) in snap.iter().zip(model).enumerate() {
            if got != want {
                return Err(Divergence {
                    seed,
                    combo: cfg.combo(),
                    detail: format!(
                        "{tag}fast-lane reader at ticket {tk}: cell {i} read {got:#x} \
                         but the serial prefix says {want:#x} — stale or torn snapshot"
                    ),
                });
            }
        }
        Ok(())
    };
    snaps.sort_by(|a, b| a.0.cmp(&b.0));
    let mut model = init;
    let mut ri = 0usize;
    let mut checked = 0u64;
    for (k, &(_tk, t, j)) in writes.iter().enumerate() {
        while ri < snaps.len() && snaps[ri].0 <= k as u64 {
            check_at(&model, snaps[ri].0, &snaps[ri].1)?;
            checked += 1;
            ri += 1;
        }
        for op in txn_program(seed, t, j, cfg) {
            apply_model(&mut model, op);
        }
    }
    while ri < snaps.len() {
        let tk = snaps[ri].0;
        if tk > total as u64 {
            return Err(diverge(format!(
                "{tag}fast-lane reader observed ticket {tk} but only {total} were issued"
            )));
        }
        check_at(&model, tk, &snaps[ri].1)?;
        checked += 1;
        ri += 1;
    }

    if sabotage {
        model[0] = model[0].wrapping_add(1);
    }
    for (i, cell) in cells.iter().enumerate() {
        let actual = cell.load_direct();
        if actual != model[i] {
            return Err(diverge(format!(
                "{tag}cell {i}: concurrent result {actual:#x} != sequential model {:#x}",
                model[i]
            )));
        }
    }
    Ok(checked)
}

/// Runs [`run_schedule_ro`] for `seed` across every [`combos`] combination,
/// stopping at the first divergence.
///
/// # Errors
///
/// Propagates the first [`Divergence`].
pub fn run_matrix_ro(seed: u64, base: &StressConfig) -> Result<Vec<RoStressReport>, Divergence> {
    let mut reports = Vec::new();
    for (algorithm, serial_lock, contention) in combos() {
        let cfg = StressConfig {
            algorithm,
            serial_lock,
            contention,
            ..base.clone()
        };
        reports.push(run_schedule_ro(seed, &cfg)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_schedule_passes_on_every_combo() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 25,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = run_matrix(0xA5A5, &base).unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        for r in &reports {
            assert_eq!(r.commits, 3 * 25, "{}", r.combo);
        }
    }

    #[test]
    fn schedules_actually_contend() {
        // With few cells, long transactions, and every thread fighting
        // over the ticket cell, some algorithm must abort sometimes —
        // otherwise the harness is not stressing anything.
        let mut aborts = 0;
        for algorithm in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            let cfg = StressConfig {
                threads: 8,
                cells: 2,
                txns_per_thread: 300,
                max_ops_per_txn: 10,
                algorithm,
                contention: ContentionManager::None,
                ..StressConfig::smoke()
            };
            for seed in 0..3 {
                aborts += run_schedule(seed, &cfg).unwrap_or_else(|d| panic!("{d}")).aborts;
            }
        }
        assert!(aborts > 0, "no aborts across 9 contended schedules");
    }

    #[test]
    fn programs_are_pure_functions_of_the_seed() {
        let cfg = StressConfig::smoke();
        assert_eq!(txn_program(9, 2, 17, &cfg), txn_program(9, 2, 17, &cfg));
        assert_ne!(txn_program(9, 2, 17, &cfg), txn_program(10, 2, 17, &cfg));
        assert_ne!(txn_program(9, 2, 17, &cfg), txn_program(9, 3, 17, &cfg));
        assert_eq!(wh_txn_program(9, 2, 17, &cfg), wh_txn_program(9, 2, 17, &cfg));
        assert_ne!(wh_txn_program(9, 2, 17, &cfg), wh_txn_program(10, 2, 17, &cfg));
        assert_eq!(
            contended_txn_program(9, 2, 17, &cfg),
            contended_txn_program(9, 2, 17, &cfg)
        );
        assert_ne!(
            contended_txn_program(9, 2, 17, &cfg),
            contended_txn_program(10, 2, 17, &cfg)
        );
    }

    /// The contended programs really are write-disjoint: every mutation's
    /// destination lands in the issuing thread's own block, across a
    /// sample large enough to draw all four operation arms.
    #[test]
    fn contended_programs_write_only_their_own_block() {
        let cfg = StressConfig {
            threads: 4,
            cells: 8,
            ..StressConfig::smoke()
        };
        let block = cfg.cells / cfg.threads;
        let mut cross_reads = 0usize;
        for t in 0..cfg.threads {
            for j in 0..60 {
                for op in contended_txn_program(0xC0, t, j, &cfg) {
                    let (src, dst) = match op {
                        StressOp::Write(i, _) | StressOp::Add(i, _) => (None, i),
                        StressOp::Copy(a, b) | StressOp::Mix(a, b) => (Some(a), b),
                    };
                    assert!(
                        (t * block..(t + 1) * block).contains(&dst),
                        "thread {t} writes cell {dst} outside its block"
                    );
                    if src.is_some_and(|a| !(t * block..(t + 1) * block).contains(&a)) {
                        cross_reads += 1;
                    }
                }
            }
        }
        assert!(cross_reads > 0, "no cross-block reads drawn — validation has no edges");
    }

    /// The contended matrix: all 21 combos pass the ticket oracle with
    /// disjoint write sets, and on the orec-based algorithms the per-shard
    /// clock stats attribute ticks to every shard the workers ran on (the
    /// run itself diverges if not — asserted again here for the report
    /// values).
    #[test]
    fn contended_matrix_passes_on_every_combo() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 25,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = run_matrix_contended(0xC047, &base).unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        for r in &reports {
            assert_eq!(r.report.commits, 3 * 25, "{}", r.report.combo);
            assert!(r.shards_used >= 1, "{}", r.report.combo);
            if !r.report.combo.starts_with("norec") {
                assert!(
                    r.shard_ticks.iter().sum::<u64>() > 0,
                    "{}: no commit ticks recorded on any clock shard",
                    r.report.combo
                );
            }
        }
    }

    /// Commit-path contention under fire: all 21 combos pass the ticket
    /// oracle on disjoint write sets while faults rain on the commit-tick
    /// CAS loop, and shard attribution survives.
    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_contended_matrix_passes_ticket_oracle() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 20,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = chaos::run_matrix_contended_chaos(0xC4A0, &base, chaos::default_plan())
            .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        let injected: u64 = reports.iter().map(|r| r.injected).sum();
        assert!(injected > 0, "chaos contended schedule injected no faults");
        for r in &reports {
            if !r.report.report.combo.starts_with("norec") {
                assert!(
                    r.report.shard_ticks.iter().sum::<u64>() > 0,
                    "{}: no commit ticks recorded on any clock shard",
                    r.report.report.combo
                );
            }
        }
    }

    /// The write-heavy matrix: all 21 combos pass the ticket oracle, and
    /// every combo really elided silent stores (the run itself diverges
    /// if not — asserted again here for the report values).
    #[test]
    fn write_heavy_matrix_elides_on_every_combo() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 25,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = run_matrix_wh(0x3717, &base).unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        for r in &reports {
            assert_eq!(r.commits, 3 * 25, "{}", r.combo);
            assert!(r.silent_elisions > 0, "{}", r.combo);
        }
    }

    /// The write-heavy programs really do manufacture silent stores:
    /// self-copies and duplicated constant writes appear across any
    /// reasonable sample of programs.
    #[test]
    fn write_heavy_programs_contain_manufactured_silent_stores() {
        let cfg = StressConfig::smoke();
        let mut self_copies = 0;
        let mut dup_writes = 0;
        for t in 0..4 {
            for j in 0..60 {
                let ops = wh_txn_program(0xFEED, t, j, &cfg);
                self_copies += ops
                    .iter()
                    .filter(|op| matches!(op, StressOp::Copy(a, b) if a == b))
                    .count();
                dup_writes += ops
                    .windows(2)
                    .filter(|w| matches!(w, [StressOp::Write(a, x), StressOp::Write(b, y)] if a == b && x == y))
                    .count();
            }
        }
        assert!(self_copies > 0, "no self-copies drawn");
        assert!(dup_writes > 0, "no duplicated constant writes drawn");
    }

    /// Elision under fire: all 21 combos pass the ticket oracle on
    /// write-heavy programs while faults rain on the write path, and the
    /// elisions still happen.
    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_write_heavy_matrix_passes_ticket_oracle() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 20,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = chaos::run_matrix_wh_chaos(0x3A17, &base, chaos::default_plan())
            .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        let injected: u64 = reports.iter().map(|r| r.injected).sum();
        assert!(injected > 0, "chaos write-heavy schedule injected no faults");
        for r in &reports {
            assert!(r.report.silent_elisions > 0, "{}", r.report.combo);
        }
    }

    /// The acceptance criterion's scratch-branch check, kept as a real
    /// test: with a bug injected (one lost update to cell 0), the harness
    /// must diverge, and replaying the printed seed must diverge again at
    /// the same place.
    #[test]
    fn injected_bug_reproduces_from_its_seed() {
        let cfg = StressConfig::smoke();
        let seed = 0x5EED;
        let first = run_schedule_sabotaged(seed, &cfg)
            .expect_err("sabotaged model must diverge");
        assert_eq!(first.seed, seed, "divergence must carry the replay seed");
        assert!(first.to_string().contains("--seed 0x5eed"), "{first}");
        assert!(first.detail.starts_with("cell 0:"), "{first}");
        let replay = run_schedule_sabotaged(first.seed, &cfg)
            .expect_err("replaying the printed seed must diverge again");
        assert_eq!(replay.combo, first.combo);
        assert!(replay.detail.starts_with("cell 0:"), "{replay}");
        // And the clean harness passes the very same schedule.
        run_schedule(seed, &cfg).unwrap_or_else(|d| panic!("{d}"));
    }

    /// The adaptive acceptance check: all 21 combos pass the ticket
    /// oracle while a controller thread switches the algorithm and
    /// contention manager out from under the load. Serial-locked combos
    /// must cross at least one live switch; lock-free combos must refuse
    /// every attempt.
    #[test]
    fn switching_matrix_passes_ticket_oracle() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 80,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = run_matrix_switching(0x5117C4, &base).unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        for r in &reports {
            assert_eq!(r.commits, 3 * 80, "{}", r.combo);
            if r.combo.contains("nolock") {
                assert_eq!(r.config_switches, 0, "{}", r.combo);
            } else {
                assert!(r.config_switches >= 1, "{}", r.combo);
            }
        }
    }

    /// Switching under fire: all 21 combos pass the ticket oracle with
    /// live algorithm/CM switches AND injected faults landing in the
    /// same schedules.
    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_switching_matrix_passes_ticket_oracle() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 40,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = chaos::run_matrix_switching_chaos(0x5117C5, &base, chaos::default_plan())
            .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        let injected: u64 = reports.iter().map(|r| r.injected).sum();
        assert!(injected > 0, "chaos switching schedule injected no faults");
        let switched: u64 = reports.iter().map(|r| r.report.config_switches).sum();
        assert!(switched > 0, "chaos switching schedule never switched");
    }

    /// The chaos acceptance check: with panics, spurious aborts, and
    /// delays injected at every fault site, all 21 combos still pass the
    /// ticket oracle and the sequential model — and the faults really
    /// fired.
    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_matrix_passes_ticket_oracle() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 20,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = chaos::run_matrix_chaos(0xC4A05, &base, chaos::default_plan())
            .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        let injected: u64 = reports.iter().map(|r| r.injected).sum();
        let panic_aborts: u64 = reports.iter().map(|r| r.panic_aborts).sum();
        assert!(injected > 0, "chaos schedule injected no faults at all");
        assert!(
            panic_aborts > 0,
            "chaos schedule never exercised the unwind path \
             ({injected} faults injected, none were panics)"
        );
    }

    /// A disabled plan makes chaos mode equivalent to the plain schedule:
    /// zero injections, full commits.
    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_with_disabled_plan_injects_nothing() {
        let cfg = StressConfig {
            threads: 2,
            txns_per_thread: 15,
            ..StressConfig::smoke()
        };
        let r = chaos::run_schedule_chaos(0xD15A, &cfg, tm::fault::FaultPlan::disabled())
            .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(r.injected, 0);
        assert_eq!(r.panic_aborts, 0);
        assert_eq!(r.report.commits, 2 * 15);
    }

    /// The read-mostly matrix: all 21 combos pass both oracles, every
    /// combo really commits on the fast lane, really promotes, and really
    /// position-checks reader snapshots.
    #[test]
    fn read_mostly_matrix_promotes_on_every_combo() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 25,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = run_matrix_ro(0xB0B0, &base).unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        for r in &reports {
            assert_eq!(r.report.commits, 3 * 25, "{}", r.report.combo);
            assert!(r.ro_fast_commits > 0, "{}", r.report.combo);
            assert!(r.ro_promotions > 0, "{}", r.report.combo);
            assert!(r.snapshots_checked > 0, "{}", r.report.combo);
        }
    }

    /// The read-mostly oracle has teeth: a lost update to cell 0 diverges,
    /// replays from its printed seed, and the clean harness passes the
    /// identical schedule.
    #[test]
    fn read_mostly_injected_bug_reproduces_from_its_seed() {
        let cfg = StressConfig::smoke();
        let seed = 0x0D0;
        let first = run_schedule_ro_sabotaged(seed, &cfg)
            .expect_err("sabotaged read-mostly model must diverge");
        assert_eq!(first.seed, seed);
        assert!(first.detail.contains("cell 0"), "{first}");
        let replay = run_schedule_ro_sabotaged(first.seed, &cfg)
            .expect_err("replaying the printed seed must diverge again");
        assert_eq!(replay.combo, first.combo);
        run_schedule_ro(seed, &cfg).unwrap_or_else(|d| panic!("{d}"));
    }

    /// Promotion under fire: all 21 combos pass both read-mostly oracles
    /// while faults rain on the fast lane and the promotion path.
    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_read_mostly_matrix_passes_both_oracles() {
        let base = StressConfig {
            threads: 3,
            cells: 6,
            txns_per_thread: 20,
            max_ops_per_txn: 5,
            ..StressConfig::smoke()
        };
        let reports = chaos::run_matrix_ro_chaos(0x2EAD, &base, chaos::default_plan())
            .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(reports.len(), combos().len());
        let injected: u64 = reports.iter().map(|r| r.injected).sum();
        assert!(injected > 0, "chaos read-mostly schedule injected no faults");
        let promotions: u64 = reports.iter().map(|r| r.report.ro_promotions).sum();
        let checked: u64 = reports.iter().map(|r| r.report.snapshots_checked).sum();
        assert!(promotions > 0 && checked > 0);
    }

    #[test]
    fn matrix_covers_all_serial_modes_and_managers() {
        let c = combos();
        assert_eq!(c.len(), 21);
        assert!(c.iter().any(|&(_, sl, _)| sl == SerialLockMode::None));
        assert!(c
            .iter()
            .any(|&(_, _, cm)| cm == ContentionManager::HOURGLASS_128));
        // SerializeAfter never runs without the serial lock.
        assert!(c.iter().all(|&(_, sl, cm)| !matches!(
            (sl, cm),
            (SerialLockMode::None, ContentionManager::SerializeAfter(_))
        )));
    }
}
