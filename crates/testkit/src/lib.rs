//! # testkit — the hermetic test and bench toolkit
//!
//! This workspace builds with **no registry dependencies** (the build
//! environment has no network access), so everything the tests and
//! benches used to pull from crates.io lives here instead:
//!
//! | module | replaces | what it is |
//! |---|---|---|
//! | [`rng`] | `rand` | seeded SplitMix64 + xoshiro256++ with a `Rng`-shaped API |
//! | [`prop`] | `proptest` | generators, a seeded case runner, greedy shrinking, and a [`proptest!`](crate::proptest) macro |
//! | [`bench`] | `criterion` | warmup + fixed-iteration timing, median/p95 reports, `BENCH_<group>.json` output |
//! | [`stress`] | — | deterministic, seed-replayable concurrency schedules for the `tm` runtime |
//! | [`alloc`] | `dhat`-style counting | a counting global allocator for zero-allocation assertions |
//!
//! Everything is deterministic by default: property tests run from a fixed
//! base seed (override with `TESTKIT_SEED`, replay one case with
//! `TESTKIT_REPLAY`), and a stress divergence prints the seed that
//! reproduces it. See `DESIGN.md` § "Hermetic builds & the testkit
//! harness" for the full workflow.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod bench;
pub mod crash;
pub mod prop;
pub mod rng;
pub mod stress;
