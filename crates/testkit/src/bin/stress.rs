//! Stress-harness driver: sweeps seeds through every runtime combination
//! until the time budget runs out, or replays one seed.
//!
//! ```text
//! cargo run --release -p testkit --bin stress -- --seconds 10
//! cargo run --release -p testkit --bin stress -- --seed 0x5eed
//! cargo run --release -p testkit --bin stress -- --seconds 5 --inject-bug
//! cargo run --release -p testkit --features chaos --bin stress -- --chaos --seconds 5
//! ```
//!
//! Exits non-zero on divergence, printing the failing seed and the replay
//! command. `--inject-bug` corrupts the oracle on purpose, to demonstrate
//! that detection and seed replay work. `--chaos` (requires the `chaos`
//! feature) arms `tm::fault` on every worker thread: spurious aborts,
//! bounded delays, and injected panics rain on all 21 combos while the
//! ticket oracle stays on.
//!
//! Every combo runs **four** schedules per seed: the mixed ticket
//! schedule, the read-mostly fast-lane schedule (transactions start
//! read-only, a quarter promote mid-flight; reader snapshots are
//! position-checked against the ticket-ordered serial prefix), the
//! write-heavy schedule (three quarters of the operations mutate, with
//! manufactured silent stores; the run fails if silent-store elision
//! never fired), and the contended-commit schedule (disjoint per-thread
//! write blocks with cross-block reads, so the threads fight over the
//! commit machinery — clock shards, orec stripes — instead of data; the
//! run fails if the per-shard clock stats stop attributing ticks to the
//! shards the workers ran on).

use std::time::{Duration, Instant};

use testkit::stress::{
    run_schedule, run_schedule_contended, run_schedule_ro, run_schedule_sabotaged,
    run_schedule_wh, StressConfig,
};

struct Args {
    seconds: Option<u64>,
    seed: Option<u64>,
    threads: usize,
    txns: usize,
    cells: usize,
    ops: usize,
    inject_bug: bool,
    chaos: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seconds: None,
        seed: None,
        threads: 4,
        txns: 150,
        cells: 8,
        ops: 6,
        inject_bug: false,
        chaos: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            let v = it.next().unwrap_or_else(|| die(&format!("{what} needs a value")));
            let v = v.trim();
            let parsed = if let Some(h) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                u64::from_str_radix(h, 16)
            } else {
                v.parse()
            };
            parsed.unwrap_or_else(|_| die(&format!("bad value for {what}: {v}")))
        };
        match a.as_str() {
            "--seconds" => args.seconds = Some(num("--seconds")),
            "--seed" => args.seed = Some(num("--seed")),
            "--threads" => args.threads = num("--threads") as usize,
            "--txns" => args.txns = num("--txns") as usize,
            "--cells" => args.cells = num("--cells") as usize,
            "--ops" => args.ops = num("--ops") as usize,
            "--inject-bug" => args.inject_bug = true,
            "--chaos" => args.chaos = true,
            "--help" | "-h" => {
                println!(
                    "usage: stress [--seconds N | --seed S] [--threads N] [--txns N] \
                     [--cells N] [--ops N] [--inject-bug] [--chaos]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("stress: {msg}");
    std::process::exit(2);
}

/// Chaos sweep: same seed/combo loop as the plain mode, but through
/// [`testkit::stress::chaos::run_schedule_chaos`] with the default plan.
#[cfg(feature = "chaos")]
fn run_chaos(args: &Args, base: &StressConfig) -> ! {
    use testkit::stress::chaos;
    let combos = testkit::stress::combos();
    let plan = chaos::default_plan();
    let budget = Duration::from_secs(args.seconds.unwrap_or(10));
    let start = Instant::now();
    let (mut schedules, mut commits, mut aborts) = (0u64, 0u64, 0u64);
    let (mut injected, mut panic_aborts) = (0u64, 0u64);
    let (mut promotions, mut ro_commits, mut snaps_checked) = (0u64, 0u64, 0u64);
    let mut elisions = 0u64;
    let (mut shards_used, mut clock_retries) = (0usize, 0u64);
    let mut seed = args.seed.unwrap_or(1);
    loop {
        for &(algorithm, serial_lock, contention) in &combos {
            let cfg = StressConfig {
                algorithm,
                serial_lock,
                contention,
                ..base.clone()
            };
            match chaos::run_schedule_chaos(seed, &cfg, plan) {
                Ok(r) => {
                    schedules += 1;
                    commits += r.report.commits;
                    aborts += r.report.aborts;
                    injected += r.injected;
                    panic_aborts += r.panic_aborts;
                }
                Err(d) => {
                    eprintln!("{d}");
                    std::process::exit(1);
                }
            }
            match chaos::run_schedule_ro_chaos(seed, &cfg, plan) {
                Ok(r) => {
                    schedules += 1;
                    commits += r.report.report.commits;
                    aborts += r.report.report.aborts;
                    injected += r.injected;
                    panic_aborts += r.panic_aborts;
                    promotions += r.report.ro_promotions;
                    ro_commits += r.report.ro_fast_commits;
                    snaps_checked += r.report.snapshots_checked;
                }
                Err(d) => {
                    eprintln!("{d}");
                    std::process::exit(1);
                }
            }
            match chaos::run_schedule_wh_chaos(seed, &cfg, plan) {
                Ok(r) => {
                    schedules += 1;
                    commits += r.report.commits;
                    aborts += r.report.aborts;
                    injected += r.injected;
                    panic_aborts += r.panic_aborts;
                    elisions += r.report.silent_elisions;
                }
                Err(d) => {
                    eprintln!("{d}");
                    std::process::exit(1);
                }
            }
            match chaos::run_schedule_contended_chaos(seed, &cfg, plan) {
                Ok(r) => {
                    schedules += 1;
                    commits += r.report.report.commits;
                    aborts += r.report.report.aborts;
                    injected += r.injected;
                    panic_aborts += r.panic_aborts;
                    shards_used = shards_used.max(r.report.shards_used);
                    clock_retries += r.report.clock_cas_retries;
                }
                Err(d) => {
                    eprintln!("{d}");
                    std::process::exit(1);
                }
            }
        }
        if args.seed.is_some() || start.elapsed() >= budget {
            break;
        }
        seed += 1;
    }
    println!(
        "stress: CHAOS OK — {} schedules over {} runtime combos, {} commits, {} aborts, \
         {} faults injected ({} panic teardowns), {} fast-lane commits, {} promotions, \
         {} reader snapshots checked, {} silent stores elided, contended commits over \
         up to {} clock shards ({} clock CAS retries), {:.2}s",
        schedules,
        combos.len(),
        commits,
        aborts,
        injected,
        panic_aborts,
        ro_commits,
        promotions,
        snaps_checked,
        elisions,
        shards_used,
        clock_retries,
        start.elapsed().as_secs_f64()
    );
    std::process::exit(0);
}

#[cfg(not(feature = "chaos"))]
fn run_chaos(_args: &Args, _base: &StressConfig) -> ! {
    die(
        "chaos mode needs the `chaos` feature: \
         cargo run --release -p testkit --features chaos --bin stress -- --chaos",
    );
}

fn main() {
    let args = parse_args();
    let base = StressConfig {
        threads: args.threads,
        cells: args.cells,
        txns_per_thread: args.txns,
        max_ops_per_txn: args.ops,
        ..StressConfig::smoke()
    };
    if args.chaos {
        run_chaos(&args, &base);
    }
    let run = if args.inject_bug {
        run_schedule_sabotaged
    } else {
        run_schedule
    };
    let combos = testkit::stress::combos();
    let budget = Duration::from_secs(args.seconds.unwrap_or(10));
    let start = Instant::now();
    let mut schedules = 0u64;
    let mut commits = 0u64;
    let mut aborts = 0u64;
    let (mut promotions, mut ro_commits, mut snaps_checked) = (0u64, 0u64, 0u64);
    let mut elisions = 0u64;
    let (mut shards_used, mut clock_retries) = (0usize, 0u64);
    let mut seed = args.seed.unwrap_or(1);
    loop {
        for &(algorithm, serial_lock, contention) in &combos {
            let cfg = StressConfig {
                algorithm,
                serial_lock,
                contention,
                ..base.clone()
            };
            match run(seed, &cfg) {
                Ok(r) => {
                    schedules += 1;
                    commits += r.commits;
                    aborts += r.aborts;
                }
                Err(d) => {
                    eprintln!("{d}");
                    std::process::exit(1);
                }
            }
            match run_schedule_ro(seed, &cfg) {
                Ok(r) => {
                    schedules += 1;
                    commits += r.report.commits;
                    aborts += r.report.aborts;
                    promotions += r.ro_promotions;
                    ro_commits += r.ro_fast_commits;
                    snaps_checked += r.snapshots_checked;
                }
                Err(d) => {
                    eprintln!("{d}");
                    std::process::exit(1);
                }
            }
            match run_schedule_wh(seed, &cfg) {
                Ok(r) => {
                    schedules += 1;
                    commits += r.commits;
                    aborts += r.aborts;
                    elisions += r.silent_elisions;
                }
                Err(d) => {
                    eprintln!("{d}");
                    std::process::exit(1);
                }
            }
            match run_schedule_contended(seed, &cfg) {
                Ok(r) => {
                    schedules += 1;
                    commits += r.report.commits;
                    aborts += r.report.aborts;
                    shards_used = shards_used.max(r.shards_used);
                    clock_retries += r.clock_cas_retries;
                }
                Err(d) => {
                    eprintln!("{d}");
                    std::process::exit(1);
                }
            }
        }
        // A single --seed run sweeps the matrix exactly once.
        if args.seed.is_some() || start.elapsed() >= budget {
            break;
        }
        seed += 1;
    }
    println!(
        "stress: OK — {} schedules over {} runtime combos, {} commits, {} aborts, \
         {} fast-lane commits, {} promotions, {} reader snapshots checked, \
         {} silent stores elided, contended commits over up to {} clock shards \
         ({} clock CAS retries), {:.2}s",
        schedules,
        combos.len(),
        commits,
        aborts,
        ro_commits,
        promotions,
        snaps_checked,
        elisions,
        shards_used,
        clock_retries,
        start.elapsed().as_secs_f64()
    );
}
