//! `bench_compare`: the offline benchmark regression gate.
//!
//! Compares every committed `BENCH_*.json` baseline in one directory
//! against a freshly generated report of the same file name in another,
//! and exits nonzero if any benchmark regressed by more than the
//! threshold (default 15%). The comparison is noise-robust: the fresh
//! run's **minimum** must beat the baseline **median** (see
//! `testkit::bench::compare_reports`). Zero-baseline benchmarks (the
//! allocation counters) must stay exactly zero. Entirely offline: both
//! sides are files on disk produced by `testkit::bench`.
//!
//! ```console
//! $ bench_compare <baseline-dir> <fresh-dir> [--threshold <percent>]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use testkit::bench::{compare_reports, parse_report};

fn bench_jsons(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("bench_compare: cannot read {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    out.sort();
    out
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut threshold_pct = 15.0f64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => {
                threshold_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("bench_compare: --threshold needs a number");
                        std::process::exit(2);
                    });
            }
            _ => dirs.push(PathBuf::from(a)),
        }
    }
    let [baseline_dir, fresh_dir] = dirs.as_slice() else {
        eprintln!("usage: bench_compare <baseline-dir> <fresh-dir> [--threshold <percent>]");
        return ExitCode::from(2);
    };

    let baselines = bench_jsons(baseline_dir);
    if baselines.is_empty() {
        eprintln!(
            "bench_compare: no BENCH_*.json baselines in {}",
            baseline_dir.display()
        );
        return ExitCode::from(2);
    }

    // Contended reports carry in-bench ratio floors that only arm on
    // hosts with enough real parallelism (≥4 cores) for cross-core
    // cache-line contention to materialize; elsewhere those floors ran
    // informational and only this absolute gate held the line. Label
    // each report so a log reader can tell which tier actually gated.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for base_path in &baselines {
        let name = base_path.file_name().unwrap().to_string_lossy();
        let tier = if !name.contains("contended") {
            "armed"
        } else if cores >= 4 {
            "armed: contended ratio floors live"
        } else {
            "informational: contended ratio floors did not arm (host cores < 4)"
        };
        let fresh_path = fresh_dir.join(&*name);
        let Ok(fresh_json) = std::fs::read_to_string(&fresh_path) else {
            // A baseline with no fresh counterpart means that bench was not
            // run this round — skip rather than fail, so partial smoke runs
            // stay usable; the full gate in verify.sh runs every bench.
            println!("  {name}: no fresh report, skipped");
            continue;
        };
        let base = parse_report(&std::fs::read_to_string(base_path).unwrap_or_default());
        let fresh = parse_report(&fresh_json);
        let bad = compare_reports(&base, &fresh, threshold_pct / 100.0);
        compared += base.iter().filter(|b| fresh.iter().any(|f| f.name == b.name)).count();
        for r in &bad {
            println!(
                "  REGRESSION {name} {}: base median {:.1}ns -> fresh min {:.1}ns (+{:.0}%)",
                r.name,
                r.base_ns,
                r.fresh_ns,
                if r.base_ns > 0.0 {
                    (r.fresh_ns / r.base_ns - 1.0) * 100.0
                } else {
                    f64::INFINITY
                },
            );
        }
        regressions += bad.len();
        if bad.is_empty() {
            println!("  {name}: ok ({} benchmarks) [{tier}]", fresh.len());
        }
    }

    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} regression(s) beyond {threshold_pct:.0}% \
             across {compared} compared benchmarks"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_compare: {compared} benchmarks within {threshold_pct:.0}% of baseline");
    ExitCode::SUCCESS
}
