//! A counting global allocator for zero-allocation assertions.
//!
//! Wraps the system allocator and counts every allocation (and growing
//! reallocation) per thread, so a test can prove a steady-state code path
//! performs no heap allocation at all:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: testkit::alloc::Counting = testkit::alloc::Counting;
//!
//! #[test]
//! fn steady_state_is_allocation_free() {
//!     warm_up();
//!     let before = testkit::alloc::thread_allocs();
//!     hot_path();
//!     assert_eq!(testkit::alloc::thread_allocs() - before, 0);
//! }
//! ```
//!
//! The counter is thread-local (const-initialized, so reading it never
//! allocates and is safe inside the allocator itself), which keeps
//! measurements immune to allocations on other test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Number of allocations (`alloc`, `alloc_zeroed`, and growing `realloc`
/// calls) made by the current thread since it started, when [`Counting`]
/// is installed as the global allocator. Measure deltas around the code
/// under test.
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

#[inline]
fn count_one() {
    // `try_with`: the allocator can be called during thread teardown after
    // the TLS slot is destroyed; losing those counts is fine.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

/// The counting allocator; install with `#[global_allocator]`. Defers all
/// actual work to [`System`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Counting;

// SAFETY: defers verbatim to `System`, which upholds the GlobalAlloc
// contract; the TLS counter bump performs no allocation (const-initialized
// Cell) and so cannot reenter the allocator.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            count_one();
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: these tests exercise the counter helpers; the allocator itself
    // is installed (and asserted against) by the top-level
    // `tests/zero_alloc.rs` integration test, since only one global
    // allocator can exist per binary.

    #[test]
    fn thread_allocs_starts_readable() {
        let a = thread_allocs();
        let b = thread_allocs();
        assert!(b >= a);
    }

    #[test]
    fn count_one_increments() {
        let before = thread_allocs();
        count_one();
        assert_eq!(thread_allocs(), before + 1);
    }
}
