//! The fault layer's quiescent paths must not allocate.
//!
//! The root workspace's `zero_alloc` test proves steady-state transactions
//! allocate nothing with the `fault` feature compiled **out**. This guard
//! proves the other half of the bargain: with the feature compiled **in**
//! (via testkit's `chaos` feature) the hooks still add zero steady-state
//! allocations — both on a thread that never armed, and on a thread armed
//! with a plan that never fires. The thread-local draw is a const-init
//! `Cell`, so even the armed check is allocation-free.

#![cfg(feature = "chaos")]

use tm::{Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction};

#[global_allocator]
static COUNTING_ALLOC: testkit::alloc::Counting = testkit::alloc::Counting;

fn runtime(algo: Algorithm) -> TmRuntime {
    TmRuntime::builder()
        .algorithm(algo)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .build()
}

/// Allocations per transaction over `n` runs of `txn`, after `warmup`
/// runs that are allowed to grow buffers.
fn allocs_per_txn(warmup: u32, n: u64, mut txn: impl FnMut()) -> u64 {
    for _ in 0..warmup {
        txn();
    }
    let before = testkit::alloc::thread_allocs();
    for _ in 0..n {
        txn();
    }
    testkit::alloc::thread_allocs() - before
}

fn assert_quiescent_fault_layer_is_zero_alloc(algo: Algorithm) {
    let rt = runtime(algo);
    let cells: Vec<TCell<u64>> = (0..4).map(TCell::new).collect();
    let txn = || {
        rt.atomic(|tx| {
            for c in &cells {
                let v = tx.read(c)?;
                tx.write(c, v + 1)?;
            }
            Ok(())
        });
    };

    // Never armed: the hooks read one thread-local Cell and bail.
    let unarmed = allocs_per_txn(50, 200, txn);
    assert_eq!(unarmed, 0, "{algo:?}: unarmed fault hooks allocated");

    // Armed with a plan that never fires: same obligation.
    tm::fault::arm_thread(0xD15A, tm::fault::FaultPlan::disabled());
    let disabled = allocs_per_txn(50, 200, txn);
    tm::fault::disarm_thread();
    assert_eq!(disabled, 0, "{algo:?}: disabled-plan fault hooks allocated");
}

#[test]
fn eager_quiescent_fault_layer_is_zero_alloc() {
    assert_quiescent_fault_layer_is_zero_alloc(Algorithm::Eager);
}

#[test]
fn lazy_quiescent_fault_layer_is_zero_alloc() {
    assert_quiescent_fault_layer_is_zero_alloc(Algorithm::Lazy);
}

#[test]
fn norec_quiescent_fault_layer_is_zero_alloc() {
    assert_quiescent_fault_layer_is_zero_alloc(Algorithm::Norec);
}

/// Even a firing plan stays zero-alloc on its *action* paths that don't
/// panic: spurious aborts and delays reuse the retry arena.
#[test]
fn injected_aborts_and_delays_do_not_allocate() {
    let rt = runtime(Algorithm::Eager);
    let c = TCell::new(0u64);
    tm::fault::arm_thread(
        42,
        tm::fault::FaultPlan::all_sites(8192, 8192, 0), // aborts + delays, no panics
    );
    let allocs = allocs_per_txn(100, 300, || {
        rt.atomic(|tx| tx.fetch_add(&c, 1));
    });
    let injected = tm::fault::injected_count();
    tm::fault::disarm_thread();
    assert!(injected > 0, "plan at 1/8 + 1/8 rate never fired");
    assert_eq!(allocs, 0, "injected abort/delay path allocated");
}
