//! Workload-aware adaptation policy: the pure decision functions behind
//! the feedback-loop controller (DESIGN.md §15).
//!
//! The paper's central lesson is that no single TM configuration wins
//! across memcached's phases; "Optimistic Concurrency Control for
//! Real-world Go Programs" shows profile-guided switching paying off on
//! exactly this kind of server workload. This module is deliberately
//! *only* the brain: every function here is a pure, deterministic map
//! from observed counter deltas to a recommendation. Sampling cadence,
//! stat collection, and the actual [`crate::TmRuntime::switch_config`]
//! quiesce live with the caller (the cache's controller thread), which
//! keeps the policy unit-testable — the same stat trace always produces
//! the same decision sequence, and the testkit stress arm replays traces
//! to prove it.
//!
//! # Signals
//!
//! * `read_only_commits / commits` — the phase's read fraction. Reads are
//!   cheapest under NOrec (one seqlock load per read, no orec traffic);
//!   writes are cheapest under eager (write-through, the paper's "lowest
//!   latency and best scalability"). The bands below have a deliberate
//!   gap (hysteresis) so a mixed phase does not flap between algorithms,
//!   each flap costing a full quiesce.
//! * `aborts / commits` — contention. Low: keep GCC's serialize-after
//!   safety net (free when aborts are rare). Moderate: randomized
//!   backoff (spreads the retry storm). Pathological: the hourglass
//!   (guarantees the starving transaction a win).

use crate::algo::Algorithm;
use crate::cm::ContentionManager;
use crate::stats::StatsSnapshot;

/// An algorithm + contention-manager pair: what the controller switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AdaptConfig {
    /// The STM algorithm.
    pub algorithm: Algorithm,
    /// The contention manager.
    pub cm: ContentionManager,
}

impl std::fmt::Display for AdaptConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.algorithm, self.cm)
    }
}

/// Minimum committed transactions an epoch must contain before its deltas
/// count as a signal. Below this the sampling noise dominates — an idle
/// or just-started epoch must never trigger a quiesce.
pub const MIN_EPOCH_COMMITS: u64 = 128;

/// Read fraction at or above which the read lane dominates enough to
/// prefer NOrec's zero-metadata reads.
pub const RO_HIGH: f64 = 0.85;

/// Read fraction at or below which the write lane dominates enough to
/// prefer eager's write-through. The gap up to [`RO_HIGH`] is the
/// hysteresis band where the current algorithm is kept.
pub const RO_LOW: f64 = 0.55;

/// Aborts-per-commit at or above which the policy escalates to the
/// hourglass (pathological contention: starving transactions need a
/// guaranteed win, not a randomized delay).
pub const ABORT_STORM: f64 = 2.0;

/// Aborts-per-commit at or above which the policy switches to randomized
/// exponential backoff.
pub const ABORT_HIGH: f64 = 0.5;

/// Aborts-per-commit at or below which contention is low enough to fall
/// back to GCC's serialize-after-100 default (costless until a
/// transaction actually aborts 100 times in a row).
pub const ABORT_LOW: f64 = 0.1;

/// Aborts-per-commit below which a write-heavy phase is *not* enough to
/// leave NOrec. NOrec's write path is one seqlock CAS per commit — on an
/// uncontended machine it beats eager's per-orec acquisition, and the
/// quiesce a switch costs buys nothing. What makes NOrec collapse under
/// writes is its global commit serialization, and the visible symptom of
/// that collapse is validation aborts; only when they appear is eager's
/// write-through worth the switch.
pub const WRITE_ABORT_MIN: f64 = 0.05;

/// The backoff configuration the policy escalates to under moderate
/// contention.
pub const BACKOFF: ContentionManager = ContentionManager::Backoff { max_shift: 6 };

/// The hourglass configuration the policy escalates to under an abort
/// storm.
pub const HOURGLASS: ContentionManager = ContentionManager::Hourglass(32);

/// Recommends a configuration for the next epoch from one epoch's
/// counter deltas. Pure and deterministic: the same `(delta, current)`
/// always yields the same answer, and an epoch without enough commits
/// ([`MIN_EPOCH_COMMITS`]) always yields `current` unchanged.
pub fn decide(delta: &StatsSnapshot, current: AdaptConfig) -> AdaptConfig {
    if delta.commits < MIN_EPOCH_COMMITS {
        return current;
    }
    let commits = delta.commits as f64;
    let ro_frac = delta.read_only_commits as f64 / commits;
    let abort_rate = delta.aborts as f64 / commits;

    let algorithm = if ro_frac >= RO_HIGH && abort_rate < ABORT_HIGH {
        Algorithm::Norec
    } else if ro_frac <= RO_LOW
        && (current.algorithm != Algorithm::Norec || abort_rate >= WRITE_ABORT_MIN)
    {
        // Write-heavy: eager's write-through wins — except that NOrec is
        // only abandoned once aborts show its commit serialization
        // actually hurting ([`WRITE_ABORT_MIN`]); an uncontended write
        // storm commits through the seqlock just fine.
        Algorithm::Eager
    } else {
        current.algorithm
    };

    let cm = if abort_rate >= ABORT_STORM {
        HOURGLASS
    } else if abort_rate >= ABORT_HIGH {
        BACKOFF
    } else if abort_rate <= ABORT_LOW {
        ContentionManager::GCC_DEFAULT
    } else {
        current.cm
    };

    AdaptConfig { algorithm, cm }
}

/// Minimum stores an epoch must contain before magazine churn counts as
/// a signal.
pub const MIN_EPOCH_STORES: u64 = 256;

/// Target refill amortization: a magazine should absorb at least this
/// many stores per slab round-trip. More refills than `stores / 32`
/// means capacity is too small for the allocation rate — grow. This arm
/// exists because the churn balance below is scale-invariant at steady
/// state (`refills ≈ stores / C` makes `churn × C ≈ stores` at *every*
/// capacity), so without it a magazine shrunk during a quiet phase could
/// never grow back when the store rate returns.
pub const MAG_REFILL_AMORTIZATION: u64 = 32;

/// Recommends a per-worker slab-magazine capacity from one epoch's
/// observed churn (`refills + flushes`) against its store count.
///
/// A magazine of capacity `C` refills `C` slots at a time, so a
/// store-dominated steady state performs about `stores / C` refills:
/// `churn * C ≈ stores` is the balanced operating point. Churn running
/// at more than twice that means the magazine cycles too fast (each
/// refill/flush is a full slab transaction) — double the capacity.
/// Churn below a quarter of it means capacity is parked doing nothing —
/// halve, releasing slots back to the shared slab class. The ×2/÷4
/// bands, like the algorithm bands, leave a hysteresis gap so a stable
/// workload settles instead of oscillating.
///
/// Pure and deterministic; clamps to `[min, max]`, and an epoch with
/// fewer than [`MIN_EPOCH_STORES`] stores keeps `current`.
pub fn size_magazine(
    current: usize,
    stores: u64,
    refills: u64,
    flushes: u64,
    min: usize,
    max: usize,
) -> usize {
    if stores < MIN_EPOCH_STORES || current == 0 {
        return current;
    }
    let churn = (refills + flushes).saturating_mul(current as u64);
    if churn > stores.saturating_mul(2) || refills > stores / MAG_REFILL_AMORTIZATION {
        (current * 2).min(max)
    } else if churn * 4 < stores {
        (current / 2).max(min)
    } else {
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(algorithm: Algorithm, cm: ContentionManager) -> AdaptConfig {
        AdaptConfig { algorithm, cm }
    }

    fn delta(commits: u64, read_only: u64, aborts: u64) -> StatsSnapshot {
        StatsSnapshot {
            commits,
            read_only_commits: read_only,
            aborts,
            ..Default::default()
        }
    }

    #[test]
    fn small_epochs_never_switch() {
        let cur = cfg(Algorithm::Eager, ContentionManager::GCC_DEFAULT);
        let d = delta(MIN_EPOCH_COMMITS - 1, 0, 10 * MIN_EPOCH_COMMITS);
        assert_eq!(decide(&d, cur), cur, "a noisy tiny epoch must be ignored");
    }

    #[test]
    fn read_mostly_prefers_norec() {
        let cur = cfg(Algorithm::Eager, ContentionManager::GCC_DEFAULT);
        let d = delta(1000, 950, 10);
        assert_eq!(decide(&d, cur).algorithm, Algorithm::Norec);
    }

    #[test]
    fn write_heavy_prefers_eager() {
        // From Norec, leaving needs abort pressure past WRITE_ABORT_MIN.
        let cur = cfg(Algorithm::Norec, ContentionManager::GCC_DEFAULT);
        let d = delta(1000, 300, 100);
        assert_eq!(decide(&d, cur).algorithm, Algorithm::Eager);
        // From Lazy there is no such defense: eager's write-through is
        // strictly the better write path.
        let cur = cfg(Algorithm::Lazy, ContentionManager::GCC_DEFAULT);
        let d = delta(1000, 300, 10);
        assert_eq!(decide(&d, cur).algorithm, Algorithm::Eager);
    }

    #[test]
    fn uncontended_write_storm_keeps_norec() {
        // 30% reads but only 1% aborts: NOrec's seqlock commit is not
        // the bottleneck, so the quiesce a switch costs buys nothing.
        let cur = cfg(Algorithm::Norec, ContentionManager::GCC_DEFAULT);
        let d = delta(1000, 300, 10);
        assert_eq!(decide(&d, cur).algorithm, Algorithm::Norec);
    }

    #[test]
    fn hysteresis_band_keeps_current_algorithm() {
        let d = delta(1000, 700, 10); // 0.7: between RO_LOW and RO_HIGH
        for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            let cur = cfg(algo, ContentionManager::GCC_DEFAULT);
            assert_eq!(decide(&d, cur).algorithm, algo);
        }
    }

    #[test]
    fn contention_escalates_and_relaxes() {
        let cur = cfg(Algorithm::Eager, ContentionManager::GCC_DEFAULT);
        assert_eq!(decide(&delta(1000, 100, 600), cur).cm, BACKOFF);
        assert_eq!(decide(&delta(1000, 100, 2500), cur).cm, HOURGLASS);
        let stormy = cfg(Algorithm::Eager, HOURGLASS);
        assert_eq!(
            decide(&delta(1000, 100, 50), stormy).cm,
            ContentionManager::GCC_DEFAULT,
            "calm epochs must fall back to the serialize-after safety net"
        );
        // The band between ABORT_LOW and ABORT_HIGH keeps the current CM.
        assert_eq!(decide(&delta(1000, 100, 300), stormy).cm, HOURGLASS);
    }

    #[test]
    fn read_mostly_under_storm_does_not_pick_norec() {
        // A high read fraction with a raging abort rate means the writers
        // that do exist are fighting; NOrec's single seqlock would make
        // that worse.
        let cur = cfg(Algorithm::Eager, ContentionManager::GCC_DEFAULT);
        let got = decide(&delta(1000, 900, 800), cur);
        assert_eq!(got.algorithm, Algorithm::Eager);
        assert_eq!(got.cm, BACKOFF);
    }

    #[test]
    fn decisions_are_deterministic_over_a_trace() {
        // The controller-determinism contract: replaying the same stat
        // trace from the same start produces the same decision sequence.
        let trace: Vec<StatsSnapshot> = (0..64)
            .map(|i| delta(500 + i * 37, (i * 61) % 500, (i * 13) % 700))
            .collect();
        let run = |mut cur: AdaptConfig| {
            let mut out = Vec::new();
            for d in &trace {
                cur = decide(d, cur);
                out.push(cur);
            }
            out
        };
        let start = cfg(Algorithm::Eager, ContentionManager::GCC_DEFAULT);
        assert_eq!(run(start), run(start));
    }

    #[test]
    fn magazine_grows_under_churn_and_shrinks_idle() {
        // cap 8, 1024 stores, 512 refills: churn*C = 4096 > 2048.
        assert_eq!(size_magazine(8, 1024, 512, 0, 4, 256), 16);
        // churn*C = 8*32 = 256 > 1024/4 = 256 (not <) and < 2048, and
        // refills sit exactly at the amortization target: hold.
        assert_eq!(size_magazine(8, 1024, 32, 0, 4, 256), 8);
        // churn*C = 8*16 = 128 < 256: shrink.
        assert_eq!(size_magazine(8, 1024, 16, 0, 4, 256), 4);
        // Clamps.
        assert_eq!(size_magazine(256, 10_000, 10_000, 0, 4, 256), 256);
        assert_eq!(size_magazine(4, 10_000, 0, 0, 4, 256), 4);
        // No signal: below the store floor, or magazines off entirely.
        assert_eq!(size_magazine(8, 100, 100, 100, 4, 256), 8);
        assert_eq!(size_magazine(0, 10_000, 0, 0, 4, 256), 0);
    }

    #[test]
    fn flushes_count_toward_churn() {
        assert_eq!(size_magazine(8, 1024, 256, 256, 4, 256), 16);
    }

    #[test]
    fn shrunk_magazine_regrows_under_refill_pressure() {
        // A magazine parked at the floor during a quiet phase must climb
        // back when a store storm returns: refills ≈ stores / C is the
        // steady state at every C, so the churn-balance arm alone would
        // hold it at 2 forever.
        assert_eq!(size_magazine(2, 1024, 512, 0, 2, 1024), 4);
        // Once refills amortize past the target, growth stops.
        assert_eq!(size_magazine(64, 2048, 32, 0, 2, 1024), 64);
    }
}
