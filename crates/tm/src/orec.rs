//! The global ownership-record (orec) table.
//!
//! Like GCC libitm's `ml_wt` method group, conflict detection is mediated by
//! a fixed-size table of versioned write-locks. Every transactional word
//! hashes (by address) to one orec; writers lock the orec for the duration
//! of their ownership, readers record the orec's version and revalidate.
//!
//! # Encoding
//!
//! An orec is a single `u64`:
//!
//! * `version << 1` (even) — unlocked, last committed at `version`;
//! * `(owner_tx_id << 1) | 1` (odd) — locked by the transaction with that id.
//!
//! # Striping
//!
//! The table is organized as cache-line *stripes* of [`ORECS_PER_STRIPE`]
//! orecs each. The hash is stripe-aware: the 64-byte *data block* an
//! address belongs to (`addr >> 6`) picks the stripe, and the word's
//! position inside its block (`(addr >> 3) & 7`) picks the slot within the
//! stripe. Two consequences:
//!
//! * Words of **unrelated** data blocks land on unrelated stripes, so a
//!   committer's lock CAS never invalidates the orec line under readers of
//!   a different block — no cross-block false sharing. (The previous
//!   design padded every orec to its own line to get this, at 64 bytes per
//!   orec; striping gets the same isolation at 8 bytes per orec, an 8×
//!   footprint cut that keeps the default 2^16-entry table inside L2.)
//! * Words of the **same** data block share one orec line. They were
//!   already sharing a data cache line, so a writer was invalidating the
//!   reader's data line regardless — co-locating their orecs adds no new
//!   coherence traffic, and gives commit-time lock runs spatial locality.
//!
//! Per-stripe conflict counters live in a separate allocation (off the
//! orec lines, so bumping one is not itself false sharing) and feed the
//! `orec_stripe_conflicts` stat.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Raw orec value.
pub type OrecValue = u64;

/// Orecs per stripe: one 64-byte cache line of 8-byte orecs.
pub const ORECS_PER_STRIPE: usize = 8;

/// Returns `true` if the orec value is locked by some transaction.
#[inline]
pub fn is_locked(v: OrecValue) -> bool {
    v & 1 == 1
}

/// Extracts the owner transaction id from a locked orec value.
#[inline]
pub fn owner_of(v: OrecValue) -> u64 {
    debug_assert!(is_locked(v));
    v >> 1
}

/// Extracts the commit version from an unlocked orec value.
#[inline]
pub fn version_of(v: OrecValue) -> u64 {
    debug_assert!(!is_locked(v));
    v >> 1
}

/// Builds the locked encoding for a transaction id.
#[inline]
pub fn locked_by(tx_id: u64) -> OrecValue {
    (tx_id << 1) | 1
}

/// Builds the unlocked encoding for a version.
#[inline]
pub fn unlocked_at(version: u64) -> OrecValue {
    version << 1
}

/// One cache line of orecs. Aligned and sized to exactly 64 bytes so
/// stripe boundaries coincide with cache-line boundaries — the property
/// the whole anti-false-sharing argument rests on (and which the layout
/// guard test pins).
#[derive(Default)]
#[repr(align(64))]
pub(crate) struct OrecStripe([AtomicU64; ORECS_PER_STRIPE]);

const _: () = assert!(std::mem::size_of::<OrecStripe>() == 64, "OrecStripe must fill one cache line");
const _: () = assert!(std::mem::align_of::<OrecStripe>() == 64, "OrecStripe must start a cache line");

/// The table of ownership records shared by all transactions of one
/// [`crate::TmRuntime`].
///
/// The table size trades false conflicts for memory; the default of 2^16
/// entries matches the scale of the memcached reproduction's working set.
/// Entries are grouped into cache-line stripes ([`OrecStripe`]), so a
/// table costs 8 bytes per orec plus 8 bytes per stripe of telemetry.
pub struct OrecTable {
    stripes: Box<[OrecStripe]>,
    /// Per-stripe conflict tallies, deliberately a separate allocation so
    /// the counters never share a line with the orecs they describe.
    conflicts: Box<[AtomicU64]>,
    stripe_mask: usize,
}

impl OrecTable {
    /// Default log2 of table size.
    pub const DEFAULT_LOG_SIZE: u32 = 16;

    /// Creates a table with `1 << log_size` entries.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is less than 3 (one full stripe) or greater
    /// than 28.
    pub fn new(log_size: u32) -> Self {
        assert!(
            (3..=28).contains(&log_size),
            "orec table log_size {log_size} out of range 3..=28"
        );
        let nstripes = 1usize << (log_size - 3);
        OrecTable {
            stripes: (0..nstripes).map(|_| OrecStripe::default()).collect(),
            conflicts: (0..nstripes).map(|_| AtomicU64::new(0)).collect(),
            stripe_mask: nstripes - 1,
        }
    }

    /// Number of orecs in the table.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn len(&self) -> usize {
        self.stripes.len() * ORECS_PER_STRIPE
    }

    /// Whether the table is empty (never true for a constructed table).
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Number of stripes in the table.
    #[inline]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Maps a word address to its orec index. Stripe-aware: the 64-byte
    /// data block picks the stripe (Fibonacci-hashed so unrelated blocks
    /// spread across the table), the word's offset inside its block picks
    /// the slot — same-block words co-locate on one orec line, unrelated
    /// blocks never share one.
    #[inline]
    pub fn index_of(&self, addr: usize) -> usize {
        let h = (addr >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let stripe = (h >> 24) & self.stripe_mask;
        let slot = (addr >> 3) & (ORECS_PER_STRIPE - 1);
        stripe * ORECS_PER_STRIPE + slot
    }

    /// Loads the orec at `idx`.
    #[inline]
    pub fn load(&self, idx: usize) -> OrecValue {
        self.stripes[idx / ORECS_PER_STRIPE].0[idx % ORECS_PER_STRIPE].load(Ordering::Acquire)
    }

    /// Attempts to CAS the orec at `idx` from `current` to `new`.
    #[inline]
    pub fn try_update(&self, idx: usize, current: OrecValue, new: OrecValue) -> bool {
        self.stripes[idx / ORECS_PER_STRIPE].0[idx % ORECS_PER_STRIPE]
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Unconditionally stores `new` at `idx`. Only the lock owner may call
    /// this (release paths).
    #[inline]
    pub fn release(&self, idx: usize, new: OrecValue) {
        self.stripes[idx / ORECS_PER_STRIPE].0[idx % ORECS_PER_STRIPE]
            .store(new, Ordering::Release);
    }

    /// Records a conflict observed at orec `idx` against its stripe.
    /// Called on the abort edges (locked-by-other, version mismatch), not
    /// on the happy path.
    #[inline]
    pub fn note_conflict(&self, idx: usize) {
        self.conflicts[idx / ORECS_PER_STRIPE].fetch_add(1, Ordering::Relaxed);
    }

    /// Total conflicts recorded across all stripes.
    pub fn conflict_total(&self) -> u64 {
        self.conflicts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Per-stripe conflict tallies.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn stripe_conflicts(&self) -> Vec<u64> {
        self.conflicts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

impl fmt::Debug for OrecTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrecTable")
            .field("len", &self.len())
            .field("stripes", &self.stripes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        let l = locked_by(42);
        assert!(is_locked(l));
        assert_eq!(owner_of(l), 42);
        let u = unlocked_at(7);
        assert!(!is_locked(u));
        assert_eq!(version_of(u), 7);
    }

    #[test]
    fn fresh_table_is_unlocked_version_zero() {
        let t = OrecTable::new(4);
        assert_eq!(t.len(), 16);
        assert!(!t.is_empty());
        assert_eq!(t.stripe_count(), 2);
        for i in 0..t.len() {
            let v = t.load(i);
            assert!(!is_locked(v));
            assert_eq!(version_of(v), 0);
        }
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let t = OrecTable::new(8);
        let addr = 0xdead_beef_usize & !7;
        let i1 = t.index_of(addr);
        let i2 = t.index_of(addr);
        assert_eq!(i1, i2);
        assert!(i1 < t.len());
    }

    #[test]
    fn adjacent_words_usually_map_to_distinct_orecs() {
        let t = OrecTable::new(10);
        let base = 0x1000usize;
        let a = t.index_of(base);
        let b = t.index_of(base + 8);
        let c = t.index_of(base + 16);
        // Same 64-byte block → same stripe, distinct slots.
        assert!(a != b || b != c);
    }

    #[test]
    fn same_block_words_share_a_stripe_distinct_slots() {
        let t = OrecTable::new(10);
        let base = 0x4_0000usize; // block-aligned
        let idxs: Vec<usize> = (0..8).map(|w| t.index_of(base + w * 8)).collect();
        let stripe = idxs[0] / ORECS_PER_STRIPE;
        for (w, &i) in idxs.iter().enumerate() {
            assert_eq!(i / ORECS_PER_STRIPE, stripe, "word {w} left the stripe");
        }
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "slots within a stripe must not collide");
    }

    #[test]
    fn different_blocks_usually_hit_different_stripes() {
        let t = OrecTable::new(10);
        let stripes: Vec<usize> = (0..16)
            .map(|b| t.index_of(0x1000 + b * 64) / ORECS_PER_STRIPE)
            .collect();
        let mut sorted = stripes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 8, "block hash must scatter stripes, got {sorted:?}");
    }

    #[test]
    fn cas_lock_and_release() {
        let t = OrecTable::new(4);
        let idx = 3;
        let before = t.load(idx);
        assert!(t.try_update(idx, before, locked_by(9)));
        assert!(!t.try_update(idx, before, locked_by(10)), "stale CAS must fail");
        assert_eq!(owner_of(t.load(idx)), 9);
        t.release(idx, unlocked_at(5));
        assert_eq!(version_of(t.load(idx)), 5);
    }

    #[test]
    fn conflicts_tally_against_the_stripe() {
        let t = OrecTable::new(4);
        assert_eq!(t.conflict_total(), 0);
        t.note_conflict(0);
        t.note_conflict(3); // same stripe as 0
        t.note_conflict(8); // second stripe
        assert_eq!(t.conflict_total(), 3);
        assert_eq!(t.stripe_conflicts(), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_log_size_rejected() {
        let _ = OrecTable::new(0);
    }
}
