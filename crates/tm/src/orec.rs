//! The global ownership-record (orec) table.
//!
//! Like GCC libitm's `ml_wt` method group, conflict detection is mediated by
//! a fixed-size table of versioned write-locks. Every transactional word
//! hashes (by address) to one orec; writers lock the orec for the duration
//! of their ownership, readers record the orec's version and revalidate.
//!
//! # Encoding
//!
//! An orec is a single `u64`:
//!
//! * `version << 1` (even) — unlocked, last committed at `version`;
//! * `(owner_tx_id << 1) | 1` (odd) — locked by the transaction with that id.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Raw orec value.
pub type OrecValue = u64;

/// Returns `true` if the orec value is locked by some transaction.
#[inline]
pub fn is_locked(v: OrecValue) -> bool {
    v & 1 == 1
}

/// Extracts the owner transaction id from a locked orec value.
#[inline]
pub fn owner_of(v: OrecValue) -> u64 {
    debug_assert!(is_locked(v));
    v >> 1
}

/// Extracts the commit version from an unlocked orec value.
#[inline]
pub fn version_of(v: OrecValue) -> u64 {
    debug_assert!(!is_locked(v));
    v >> 1
}

/// Builds the locked encoding for a transaction id.
#[inline]
pub fn locked_by(tx_id: u64) -> OrecValue {
    (tx_id << 1) | 1
}

/// Builds the unlocked encoding for a version.
#[inline]
pub fn unlocked_at(version: u64) -> OrecValue {
    version << 1
}

/// One orec, padded to a full cache line. Orecs are the hottest shared
/// words in the orec-based algorithms (every read samples one, every
/// commit CASes several); without padding, eight orecs share a 64-byte
/// line and a committer locking one orec invalidates the line under
/// readers of seven unrelated ones — false sharing that Fibonacci hashing
/// makes *more* likely by design, since it scatters adjacent addresses
/// across the whole table.
#[derive(Default)]
#[repr(align(64))]
struct PaddedOrec(AtomicU64);

/// The table of ownership records shared by all transactions of one
/// [`crate::TmRuntime`].
///
/// The table size trades false conflicts for memory; the default of 2^16
/// entries matches the scale of the memcached reproduction's working set.
/// Entries are cache-line-padded ([`PaddedOrec`]), so a table costs
/// 64 bytes per orec.
pub struct OrecTable {
    orecs: Box<[PaddedOrec]>,
    mask: usize,
}

impl OrecTable {
    /// Default log2 of table size.
    pub const DEFAULT_LOG_SIZE: u32 = 16;

    /// Creates a table with `1 << log_size` entries.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is 0 or greater than 28.
    pub fn new(log_size: u32) -> Self {
        assert!(
            (1..=28).contains(&log_size),
            "orec table log_size {log_size} out of range 1..=28"
        );
        let n = 1usize << log_size;
        let orecs = (0..n).map(|_| PaddedOrec::default()).collect::<Vec<_>>();
        OrecTable {
            orecs: orecs.into_boxed_slice(),
            mask: n - 1,
        }
    }

    /// Number of orecs in the table.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn len(&self) -> usize {
        self.orecs.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.orecs.is_empty()
    }

    /// Maps a word address to its orec index (Fibonacci hashing over the
    /// word-aligned address, so adjacent words spread across the table).
    #[inline]
    pub fn index_of(&self, addr: usize) -> usize {
        let h = (addr >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 24) & self.mask
    }

    /// Loads the orec at `idx`.
    #[inline]
    pub fn load(&self, idx: usize) -> OrecValue {
        self.orecs[idx].0.load(Ordering::Acquire)
    }

    /// Attempts to CAS the orec at `idx` from `current` to `new`.
    #[inline]
    pub fn try_update(&self, idx: usize, current: OrecValue, new: OrecValue) -> bool {
        self.orecs[idx]
            .0
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Unconditionally stores `new` at `idx`. Only the lock owner may call
    /// this (release paths).
    #[inline]
    pub fn release(&self, idx: usize, new: OrecValue) {
        self.orecs[idx].0.store(new, Ordering::Release);
    }
}

impl fmt::Debug for OrecTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrecTable")
            .field("len", &self.orecs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        let l = locked_by(42);
        assert!(is_locked(l));
        assert_eq!(owner_of(l), 42);
        let u = unlocked_at(7);
        assert!(!is_locked(u));
        assert_eq!(version_of(u), 7);
    }

    #[test]
    fn fresh_table_is_unlocked_version_zero() {
        let t = OrecTable::new(4);
        assert_eq!(t.len(), 16);
        assert!(!t.is_empty());
        for i in 0..t.len() {
            let v = t.load(i);
            assert!(!is_locked(v));
            assert_eq!(version_of(v), 0);
        }
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let t = OrecTable::new(8);
        let addr = 0xdead_beef_usize & !7;
        let i1 = t.index_of(addr);
        let i2 = t.index_of(addr);
        assert_eq!(i1, i2);
        assert!(i1 < t.len());
    }

    #[test]
    fn adjacent_words_usually_map_to_distinct_orecs() {
        let t = OrecTable::new(10);
        let base = 0x1000usize;
        let a = t.index_of(base);
        let b = t.index_of(base + 8);
        let c = t.index_of(base + 16);
        // Fibonacci hashing: consecutive words should not all collide.
        assert!(a != b || b != c);
    }

    #[test]
    fn cas_lock_and_release() {
        let t = OrecTable::new(4);
        let idx = 3;
        let before = t.load(idx);
        assert!(t.try_update(idx, before, locked_by(9)));
        assert!(!t.try_update(idx, before, locked_by(10)), "stale CAS must fail");
        assert_eq!(owner_of(t.load(idx)), 9);
        t.release(idx, unlocked_at(5));
        assert_eq!(version_of(t.load(idx)), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_log_size_rejected() {
        let _ = OrecTable::new(0);
    }
}
