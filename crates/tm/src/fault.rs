//! Deterministic, seed-driven fault injection for chaos testing the
//! runtime (compiled in only with the `fault` cargo feature).
//!
//! The runtime calls [`inject`] at five structurally interesting points —
//! the [`FaultSite`]s. With the `fault` feature **disabled** (the
//! default), `inject` is an `#[inline(always)]` no-op that the optimizer
//! erases entirely: release builds carry zero cost and zero allocations
//! (guarded by the chaos zero-alloc test in `testkit`).
//!
//! With the feature enabled, a thread that has been armed via
//! [`arm_thread`] draws from a private xorshift stream at every visited
//! site and, per the armed [`FaultPlan`], either:
//!
//! * returns a **spurious [`Abort::Conflict`]** (the attempt retries
//!   through the normal abort path),
//! * spins/yields for a **bounded delay** (widening race windows), or
//! * **panics** (exercising the unwind-safety machinery: undo-log replay,
//!   orec/serial-lock release, hourglass reopen).
//!
//! Faults are a pure function of `(seed, visit sequence)` per thread, so a
//! chaos schedule replays exactly from its seed. Threads that never arm
//! (or that disarm) observe nothing.
//!
//! Injection sites are placed only where every action is recoverable: a
//! panic is never injected while NOrec holds the global sequence lock or
//! after any engine has begun publishing a buffered write set.

use crate::error::Abort;

/// Where in the runtime a fault may be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Encounter-time or commit-time ownership-record acquisition.
    OrecAcquire,
    /// Read-set validation (eager/lazy orec revalidation, NOrec
    /// value-based validation).
    Validate,
    /// Entry to an engine's commit protocol (before any lock or the
    /// global sequence lock is taken).
    CommitLock,
    /// Global-clock advance at commit time.
    ClockTick,
    /// `onCommit` / `onAbort` handler execution (spurious-abort draws are
    /// meaningless here and are ignored by the caller).
    Handler,
}

impl FaultSite {
    /// All five sites, for building masks.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::OrecAcquire,
        FaultSite::Validate,
        FaultSite::CommitLock,
        FaultSite::ClockTick,
        FaultSite::Handler,
    ];

    /// This site's bit in a [`FaultPlan::sites`] mask.
    pub const fn bit(self) -> u8 {
        match self {
            FaultSite::OrecAcquire => 1 << 0,
            FaultSite::Validate => 1 << 1,
            FaultSite::CommitLock => 1 << 2,
            FaultSite::ClockTick => 1 << 3,
            FaultSite::Handler => 1 << 4,
        }
    }
}

/// Per-thread injection policy: which sites fire, and the probability of
/// each action in parts per 65536 per visited site. Actions are drawn in
/// the order panic → abort → delay from a single 16-bit draw, so the
/// rates must sum to at most 65536.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Bitmask of [`FaultSite::bit`]s at which faults may fire.
    pub sites: u8,
    /// Probability of a spurious [`Abort::Conflict`], per 65536.
    pub abort_per_64k: u16,
    /// Probability of a bounded spin/yield delay, per 65536.
    pub delay_per_64k: u16,
    /// Probability of an injected panic, per 65536.
    pub panic_per_64k: u16,
}

impl FaultPlan {
    /// A plan that never fires (arming with it is equivalent to not
    /// arming).
    pub const fn disabled() -> Self {
        FaultPlan {
            sites: 0,
            abort_per_64k: 0,
            delay_per_64k: 0,
            panic_per_64k: 0,
        }
    }

    /// A plan covering every site with the given action rates.
    pub const fn all_sites(abort_per_64k: u16, delay_per_64k: u16, panic_per_64k: u16) -> Self {
        FaultPlan {
            sites: 0x1F,
            abort_per_64k,
            delay_per_64k,
            panic_per_64k,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

#[cfg(feature = "fault")]
mod armed {
    use super::{Abort, FaultPlan, FaultSite};
    use std::cell::Cell;

    thread_local! {
        /// `(xorshift state, plan)` for this thread; `None` = disarmed.
        /// Const-initialized `Cell` so reading it never allocates (the
        /// hot path must stay zero-alloc even with the feature compiled).
        static STATE: Cell<Option<(u64, FaultPlan)>> = const { Cell::new(None) };
        /// Count of actions (aborts + delays + panics) injected on this
        /// thread since it was last armed.
        static INJECTED: Cell<u64> = const { Cell::new(0) };
    }

    /// Arms fault injection on the calling thread. Deterministic: the
    /// action sequence is a pure function of `seed` and the order in
    /// which this thread visits injection sites.
    pub fn arm_thread(seed: u64, plan: FaultPlan) {
        // xorshift has a fixed point at zero; displace an all-zero seed.
        let state = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        STATE.with(|s| s.set(Some((state, plan))));
        INJECTED.with(|c| c.set(0));
    }

    /// Disarms fault injection on the calling thread.
    pub fn disarm_thread() {
        STATE.with(|s| s.set(None));
    }

    /// Actions injected on this thread since the last [`arm_thread`].
    pub fn injected_count() -> u64 {
        INJECTED.with(Cell::get)
    }

    #[inline]
    pub(crate) fn inject(site: FaultSite) -> Result<(), Abort> {
        let Some((mut rng, plan)) = STATE.with(Cell::get) else {
            return Ok(());
        };
        if plan.sites & site.bit() == 0 {
            return Ok(());
        }
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        STATE.with(|s| s.set(Some((rng, plan))));
        let draw = (rng & 0xFFFF) as u16;
        let panic_edge = plan.panic_per_64k;
        let abort_edge = panic_edge.saturating_add(plan.abort_per_64k);
        let delay_edge = abort_edge.saturating_add(plan.delay_per_64k);
        if draw < panic_edge {
            INJECTED.with(|c| c.set(c.get() + 1));
            panic!("tm::fault injected panic at {site:?}");
        } else if draw < abort_edge {
            INJECTED.with(|c| c.set(c.get() + 1));
            Err(Abort::Conflict)
        } else if draw < delay_edge {
            INJECTED.with(|c| c.set(c.get() + 1));
            // Bounded delay: a short seed-derived spin, occasionally a
            // yield (the interesting schedules on a one-core host).
            let spins = (rng >> 16) & 0x3F;
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            if rng & (1 << 22) != 0 {
                std::thread::yield_now();
            }
            Ok(())
        } else {
            Ok(())
        }
    }
}

#[cfg(feature = "fault")]
pub use armed::{arm_thread, disarm_thread, injected_count};

#[cfg(feature = "fault")]
pub(crate) use armed::inject;

/// Fault-injection hook, compiled to nothing without the `fault` feature.
#[cfg(not(feature = "fault"))]
#[inline(always)]
pub(crate) fn inject(_site: FaultSite) -> Result<(), Abort> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_bits_are_distinct() {
        let mut seen = 0u8;
        for s in FaultSite::ALL {
            assert_eq!(seen & s.bit(), 0, "{s:?} bit collides");
            seen |= s.bit();
        }
        assert_eq!(seen, 0x1F);
    }

    #[test]
    fn disabled_plan_is_default() {
        assert_eq!(FaultPlan::default(), FaultPlan::disabled());
        assert_eq!(FaultPlan::all_sites(1, 2, 3).sites, 0x1F);
    }

    #[test]
    fn unarmed_inject_is_a_noop() {
        for s in FaultSite::ALL {
            assert_eq!(inject(s), Ok(()));
        }
    }

    #[cfg(feature = "fault")]
    #[test]
    fn armed_aborts_are_deterministic() {
        let run = || {
            arm_thread(42, FaultPlan::all_sites(32768, 0, 0));
            let seq: Vec<bool> = (0..64)
                .map(|_| inject(FaultSite::Validate).is_err())
                .collect();
            disarm_thread();
            seq
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must inject the same sequence");
        assert!(a.iter().any(|&x| x), "half-rate plan must abort sometimes");
        assert!(!a.iter().all(|&x| x), "half-rate plan must pass sometimes");
    }

    #[cfg(feature = "fault")]
    #[test]
    fn masked_sites_never_fire() {
        arm_thread(
            7,
            FaultPlan {
                sites: FaultSite::Validate.bit(),
                abort_per_64k: u16::MAX,
                delay_per_64k: 0,
                panic_per_64k: 0,
            },
        );
        for _ in 0..32 {
            assert_eq!(inject(FaultSite::OrecAcquire), Ok(()));
            assert!(inject(FaultSite::Validate).is_err());
        }
        disarm_thread();
        assert_eq!(inject(FaultSite::Validate), Ok(()));
    }

    #[cfg(feature = "fault")]
    #[test]
    fn injected_count_tracks_actions() {
        arm_thread(9, FaultPlan::all_sites(u16::MAX, 0, 0));
        assert_eq!(injected_count(), 0);
        for _ in 0..5 {
            let _ = inject(FaultSite::CommitLock);
        }
        assert_eq!(injected_count(), 5);
        disarm_thread();
    }
}
