//! Runtime statistics: the counters behind the paper's Tables 1–4.
//!
//! The paper reports, per branch, the total number of transactions and how
//! many serialized — split by cause: **In-Flight Switch** (a relaxed
//! transaction hit an unsafe operation mid-execution), **Start Serial**
//! (every path through the transaction is unsafe, so it began irrevocably),
//! and **Abort Serial** (the contention policy serialized it after too many
//! consecutive aborts).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Live atomic counters owned by a [`crate::TmRuntime`].
        #[derive(Default)]
        pub struct TmStats {
            $($(#[$doc])* pub(crate) $name: AtomicU64,)*
        }

        /// A point-in-time copy of the runtime counters, suitable for diffing.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl TmStats {
            /// Copies every counter.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)*
                }
            }
        }

        impl StatsSnapshot {
            /// Counter-wise `self - earlier`; saturates at zero so a reset
            /// between snapshots cannot underflow.
            pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)*
                }
            }
        }
    };
}

counters! {
    /// Transactions started (each retry of the same source transaction
    /// counts once, matching the paper's "Transactions" column which counts
    /// *committed* attempts — see [`StatsSnapshot::transactions`]).
    begins,
    /// Transactions committed.
    commits,
    /// Aborts (conflict or failed commit-time validation).
    aborts,
    /// Commits that wrote nothing (read-only fast path).
    read_only_commits,
    /// Relaxed transactions that hit an unsafe operation mid-flight and
    /// upgraded to serial-irrevocable mode.
    in_flight_switch,
    /// Relaxed transactions that began in serial mode because every code
    /// path performs an unsafe operation.
    start_serial,
    /// Transactions serialized by the contention policy after too many
    /// consecutive aborts.
    abort_serial,
    /// Commits completed while irrevocable (any cause).
    irrevocable_commits,
    /// In-flight switches that failed validation and fell back to an abort.
    failed_switches,
    /// `onCommit` handlers executed.
    commit_handlers_run,
    /// `onAbort` handlers executed.
    abort_handlers_run,
    /// Explicit cancellations (`transaction_cancel`).
    cancels,
}

impl TmStats {
    #[inline]
    pub(crate) fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(&self, c: &AtomicU64, n: u64) {
        if n != 0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for TmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TmStats{:?}", self.snapshot())
    }
}

impl StatsSnapshot {
    /// The paper's "Transactions" column: completed transactions
    /// (commits + cancels), not counting aborted attempts separately.
    pub fn transactions(&self) -> u64 {
        self.commits + self.cancels
    }

    /// Aborts per commit — the ratio the paper quotes when comparing
    /// algorithms in §4 ("NOrec worker threads aborted once per 5 commits,
    /// Lazy ... 14 times per 1 commit").
    pub fn aborts_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }

    /// Fraction of transactions that serialized for any reason.
    pub fn serialization_rate(&self) -> f64 {
        let t = self.transactions();
        if t == 0 {
            0.0
        } else {
            (self.in_flight_switch + self.start_serial + self.abort_serial) as f64 / t as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    /// One row in the format of the paper's Tables 1–4.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.transactions().max(1) as f64;
        write!(
            f,
            "txns={} in-flight={} ({:.1}%) start-serial={} ({:.1}%) abort-serial={}",
            self.transactions(),
            self.in_flight_switch,
            100.0 * self.in_flight_switch as f64 / t,
            self.start_serial,
            100.0 * self.start_serial as f64 / t,
            self.abort_serial,
        )
    }
}

thread_local! {
    static THREAD_TALLY: std::cell::Cell<ThreadTally> = const { std::cell::Cell::new(ThreadTally { commits: 0, aborts: 0 }) };
}

/// Per-thread commit/abort tallies, used by the Figure 11 harness to report
/// the cross-thread abort-rate variance the paper discusses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadTally {
    /// Commits by this thread since the last [`take_thread_tally`].
    pub commits: u64,
    /// Aborts by this thread since the last [`take_thread_tally`].
    pub aborts: u64,
}

pub(crate) fn tally_commit() {
    THREAD_TALLY.with(|t| {
        let mut v = t.get();
        v.commits += 1;
        t.set(v);
    });
}

pub(crate) fn tally_abort() {
    THREAD_TALLY.with(|t| {
        let mut v = t.get();
        v.aborts += 1;
        t.set(v);
    });
}

/// Returns and resets the calling thread's commit/abort tally.
pub fn take_thread_tally() -> ThreadTally {
    THREAD_TALLY.with(|t| t.replace(ThreadTally::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let s = TmStats::default();
        s.bump(&s.commits);
        s.bump(&s.commits);
        s.bump(&s.aborts);
        let a = s.snapshot();
        s.bump(&s.commits);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.commits, 1);
        assert_eq!(d.aborts, 0);
    }

    #[test]
    fn diff_saturates() {
        let a = StatsSnapshot {
            commits: 5,
            ..Default::default()
        };
        let b = StatsSnapshot::default();
        assert_eq!(b.since(&a).commits, 0);
    }

    #[test]
    fn derived_ratios() {
        let s = StatsSnapshot {
            commits: 10,
            aborts: 5,
            in_flight_switch: 1,
            start_serial: 1,
            ..Default::default()
        };
        assert_eq!(s.transactions(), 10);
        assert!((s.aborts_per_commit() - 0.5).abs() < 1e-12);
        assert!((s.serialization_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ratios_are_zero_when_empty() {
        let s = StatsSnapshot::default();
        assert_eq!(s.aborts_per_commit(), 0.0);
        assert_eq!(s.serialization_rate(), 0.0);
    }

    #[test]
    fn display_matches_table_format() {
        let s = StatsSnapshot {
            commits: 100,
            in_flight_switch: 10,
            start_serial: 5,
            abort_serial: 1,
            ..Default::default()
        };
        let row = s.to_string();
        assert!(row.contains("in-flight=10 (10.0%)"), "{row}");
        assert!(row.contains("start-serial=5 (5.0%)"), "{row}");
        assert!(row.contains("abort-serial=1"), "{row}");
    }

    #[test]
    fn thread_tally_take_resets() {
        tally_commit();
        tally_abort();
        tally_abort();
        let t = take_thread_tally();
        assert_eq!(t, ThreadTally { commits: 1, aborts: 2 });
        assert_eq!(take_thread_tally(), ThreadTally::default());
    }
}
