//! Runtime statistics: the counters behind the paper's Tables 1–4.
//!
//! The paper reports, per branch, the total number of transactions and how
//! many serialized — split by cause: **In-Flight Switch** (a relaxed
//! transaction hit an unsafe operation mid-execution), **Start Serial**
//! (every path through the transaction is unsafe, so it began irrevocably),
//! and **Abort Serial** (the contention policy serialized it after too many
//! consecutive aborts).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Live atomic counters owned by a [`crate::TmRuntime`].
        #[derive(Default)]
        pub struct TmStats {
            $($(#[$doc])* pub(crate) $name: AtomicU64,)*
        }

        /// A point-in-time copy of the runtime counters, suitable for diffing.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl TmStats {
            /// Copies every counter.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)*
                }
            }
        }

        impl StatsSnapshot {
            /// Counter-wise `self - earlier`; saturates at zero so a reset
            /// between snapshots cannot underflow.
            pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)*
                }
            }
        }
    };
}

counters! {
    /// Transactions started (each retry of the same source transaction
    /// counts once, matching the paper's "Transactions" column which counts
    /// *committed* attempts — see [`StatsSnapshot::transactions`]).
    begins,
    /// Transactions committed.
    commits,
    /// Aborts (conflict or failed commit-time validation).
    aborts,
    /// Commits that wrote nothing (read-only fast path).
    read_only_commits,
    /// Relaxed transactions that hit an unsafe operation mid-flight and
    /// upgraded to serial-irrevocable mode.
    in_flight_switch,
    /// Relaxed transactions that began in serial mode because every code
    /// path performs an unsafe operation.
    start_serial,
    /// Transactions serialized by the contention policy after too many
    /// consecutive aborts.
    abort_serial,
    /// Commits completed while irrevocable (any cause).
    irrevocable_commits,
    /// In-flight switches that failed validation and fell back to an abort.
    failed_switches,
    /// `onCommit` handlers executed.
    commit_handlers_run,
    /// `onAbort` handlers executed.
    abort_handlers_run,
    /// Explicit cancellations (`transaction_cancel`).
    cancels,
    /// Attempts torn down because a panic unwound out of the transaction
    /// body or the engine's commit path (undo replayed, locks released,
    /// then the unwind resumed).
    panic_aborts,
    /// `onCommit`/`onAbort` handlers that panicked. A handler panic never
    /// rolls back an already-committed transaction; the first payload is
    /// re-thrown after all remaining handlers have run.
    handler_panics,
    /// Bounded transactions that exhausted `TxOptions::max_retries`.
    retry_limits,
    /// Bounded transactions whose `TxOptions::deadline` expired.
    timeouts,
    /// Read-only fast-lane transactions that committed without ever
    /// promoting: no orec acquired, no undo/redo log, single-fence commit.
    ro_fast_commits,
    /// Fast-lane transactions that wrote mid-flight and promoted to a full
    /// read-write transaction (which then committed or retried normally).
    ro_promotions,
    /// Validations that *extended* a snapshot instead of aborting: the
    /// global clock (or NOrec seqlock) had moved, but every logged read was
    /// still consistent, so the start timestamp was advanced in place.
    snapshot_extensions,
    /// Repeated reads of an already-logged word (same orec for eager/lazy,
    /// same address for NOrec) served from the read-set index without
    /// appending a duplicate read-log entry.
    read_log_dedup_hits,
    /// Transactional writes whose value equaled the location's current
    /// committed contents: dropped from the write set and logged as reads
    /// instead (the location stays validated, so serializability is
    /// untouched). A transaction whose writes are *all* silent commits on
    /// the read-only path — no orec, no clock tick.
    silent_store_elisions,
    /// Writer commits that acquired their timestamp with the conflict-free
    /// `snapshot -> snapshot + 1` CAS (TL2 GV5-style): the snapshot was
    /// provably current at commit, so commit-time validation was skipped.
    /// For NOrec this counts first-try seqlock acquisitions.
    clock_tick_elisions,
    /// Commit-time clock CASes lost to a concurrent committer — the
    /// contended path that pays a full tick plus validation (for NOrec,
    /// seqlock acquisition retries). The clock-pressure gauge: relief work
    /// (magazines, batching, silent stores) must push this down.
    clock_cas_retries,
    /// Full cross-shard commit-clock scans, paid only on the snapshot
    /// extension path (TLC-style: quiescent threads never synchronize).
    /// Per-shard breakdowns come from `TmRuntime::clock_shard_stats`.
    clock_shard_syncs,
    /// Conflicts recorded against orec cache-line stripes (locked-by-other
    /// encounters and validation version mismatches). Snapshots read the
    /// live per-stripe tallies; `TmRuntime::orec_stripe_conflicts` gives
    /// the per-stripe breakdown.
    orec_stripe_conflicts,
    /// NOrec writer commits whose buffered values all matched committed
    /// memory inside one even-stable seqlock window: the write-back and
    /// the sequence bump were both skipped, so concurrent readers kept
    /// their snapshots instead of revalidating.
    seqlock_bump_elisions,
    /// Live algorithm/contention-manager swaps performed by
    /// `TmRuntime::switch_config` (each one a full quiesce under the
    /// serial write lock). No-op switches (already at the target
    /// configuration) are not counted.
    config_switches,
}

impl TmStats {
    #[inline]
    pub(crate) fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(&self, c: &AtomicU64, n: u64) {
        if n != 0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for TmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TmStats{:?}", self.snapshot())
    }
}

impl StatsSnapshot {
    /// The paper's "Transactions" column: completed transactions
    /// (commits + cancels), not counting aborted attempts separately.
    pub fn transactions(&self) -> u64 {
        self.commits + self.cancels
    }

    /// Aborts per commit — the ratio the paper quotes when comparing
    /// algorithms in §4 ("NOrec worker threads aborted once per 5 commits,
    /// Lazy ... 14 times per 1 commit").
    pub fn aborts_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }

    /// Fraction of transactions that serialized for any reason.
    pub fn serialization_rate(&self) -> f64 {
        let t = self.transactions();
        if t == 0 {
            0.0
        } else {
            (self.in_flight_switch + self.start_serial + self.abort_serial) as f64 / t as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    /// One row in the format of the paper's Tables 1–4.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.transactions().max(1) as f64;
        write!(
            f,
            "txns={} in-flight={} ({:.1}%) start-serial={} ({:.1}%) abort-serial={}",
            self.transactions(),
            self.in_flight_switch,
            100.0 * self.in_flight_switch as f64 / t,
            self.start_serial,
            100.0 * self.start_serial as f64 / t,
            self.abort_serial,
        )
    }
}

/// A cheap progress probe for the livelock watchdog: pair two snapshots
/// taken some interval apart and ask whether the runtime made progress.
///
/// Everything here is a relaxed atomic load — taking a snapshot costs a
/// handful of reads and never blocks, so an external watchdog thread can
/// poll at any frequency. See [`crate::TmRuntime::liveness`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LivenessSnapshot {
    /// Committed transactions so far.
    pub commits: u64,
    /// Aborted attempts so far.
    pub aborts: u64,
    /// Panic-torn-down attempts so far.
    pub panic_aborts: u64,
    /// Global commit-clock value (eager/lazy timestamp clock).
    pub clock: u64,
    /// NOrec global sequence-lock value.
    pub seq: u64,
    /// Transaction id currently holding the hourglass gate closed
    /// (0 = open).
    pub hourglass_holder: u64,
    /// Whether a serial-irrevocable writer is pending or active on the
    /// serial lock.
    pub serial_writer_pending: bool,
}

impl LivenessSnapshot {
    /// True if the runtime churned without progressing since `earlier`:
    /// aborts grew but no transaction committed and neither global clock
    /// advanced. A sustained `true` across several polls means the system
    /// is livelocked (abort storm, stuck hourglass holder, or a wedged
    /// serial writer — the other fields say which).
    pub fn stalled_since(&self, earlier: &LivenessSnapshot) -> bool {
        self.aborts > earlier.aborts
            && self.commits == earlier.commits
            && self.clock == earlier.clock
            && self.seq == earlier.seq
    }

    /// True if the window since `earlier` saw at least `threshold` aborts
    /// per commit (and at least `threshold` aborts in absolute terms, so a
    /// tiny window cannot trip the detector). Commits of zero count as one
    /// to keep the ratio finite.
    pub fn abort_storm_since(&self, earlier: &LivenessSnapshot, threshold: u64) -> bool {
        let da = self.aborts.saturating_sub(earlier.aborts);
        let dc = self.commits.saturating_sub(earlier.commits);
        da >= threshold && da >= threshold.saturating_mul(dc.max(1))
    }
}

thread_local! {
    static THREAD_TALLY: std::cell::Cell<ThreadTally> = const { std::cell::Cell::new(ThreadTally { commits: 0, aborts: 0 }) };
}

/// Per-thread commit/abort tallies, used by the Figure 11 harness to report
/// the cross-thread abort-rate variance the paper discusses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadTally {
    /// Commits by this thread since the last [`take_thread_tally`].
    pub commits: u64,
    /// Aborts by this thread since the last [`take_thread_tally`].
    pub aborts: u64,
}

pub(crate) fn tally_commit() {
    THREAD_TALLY.with(|t| {
        let mut v = t.get();
        v.commits += 1;
        t.set(v);
    });
}

pub(crate) fn tally_abort() {
    THREAD_TALLY.with(|t| {
        let mut v = t.get();
        v.aborts += 1;
        t.set(v);
    });
}

/// Returns and resets the calling thread's commit/abort tally.
pub fn take_thread_tally() -> ThreadTally {
    THREAD_TALLY.with(|t| t.replace(ThreadTally::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let s = TmStats::default();
        s.bump(&s.commits);
        s.bump(&s.commits);
        s.bump(&s.aborts);
        let a = s.snapshot();
        s.bump(&s.commits);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.commits, 1);
        assert_eq!(d.aborts, 0);
    }

    #[test]
    fn diff_saturates() {
        let a = StatsSnapshot {
            commits: 5,
            ..Default::default()
        };
        let b = StatsSnapshot::default();
        assert_eq!(b.since(&a).commits, 0);
    }

    #[test]
    fn derived_ratios() {
        let s = StatsSnapshot {
            commits: 10,
            aborts: 5,
            in_flight_switch: 1,
            start_serial: 1,
            ..Default::default()
        };
        assert_eq!(s.transactions(), 10);
        assert!((s.aborts_per_commit() - 0.5).abs() < 1e-12);
        assert!((s.serialization_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ratios_are_zero_when_empty() {
        let s = StatsSnapshot::default();
        assert_eq!(s.aborts_per_commit(), 0.0);
        assert_eq!(s.serialization_rate(), 0.0);
    }

    #[test]
    fn display_matches_table_format() {
        let s = StatsSnapshot {
            commits: 100,
            in_flight_switch: 10,
            start_serial: 5,
            abort_serial: 1,
            ..Default::default()
        };
        let row = s.to_string();
        assert!(row.contains("in-flight=10 (10.0%)"), "{row}");
        assert!(row.contains("start-serial=5 (5.0%)"), "{row}");
        assert!(row.contains("abort-serial=1"), "{row}");
    }

    #[test]
    fn stalled_detector() {
        let a = LivenessSnapshot {
            commits: 10,
            aborts: 50,
            clock: 7,
            ..Default::default()
        };
        let churning = LivenessSnapshot { aborts: 80, ..a };
        assert!(churning.stalled_since(&a));
        let progressed = LivenessSnapshot {
            aborts: 80,
            commits: 11,
            ..a
        };
        assert!(!progressed.stalled_since(&a));
        let ticked = LivenessSnapshot { aborts: 80, clock: 8, ..a };
        assert!(!ticked.stalled_since(&a));
        assert!(!a.stalled_since(&a), "no aborts means no stall signal");
    }

    #[test]
    fn abort_storm_detector() {
        let a = LivenessSnapshot::default();
        let storm = LivenessSnapshot {
            aborts: 1000,
            commits: 10,
            ..Default::default()
        };
        assert!(storm.abort_storm_since(&a, 50));
        assert!(!storm.abort_storm_since(&a, 200));
        let tiny = LivenessSnapshot {
            aborts: 3,
            ..Default::default()
        };
        assert!(
            !tiny.abort_storm_since(&a, 50),
            "small windows must not trip the detector"
        );
    }

    #[test]
    fn thread_tally_take_resets() {
        tally_commit();
        tally_abort();
        tally_abort();
        let t = take_thread_tally();
        assert_eq!(t, ThreadTally { commits: 1, aborts: 2 });
        assert_eq!(take_thread_tally(), ThreadTally::default());
    }
}
