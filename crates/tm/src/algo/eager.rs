//! The GCC-default engine: encounter-time orec locking, write-through
//! (direct update), undo logging, and TinySTM/TL2-style timestamp
//! extension.
//!
//! The paper (§4) observes that this design "does not have buffered update,
//! had the lowest latency and the best scalability" on memcached — at the
//! price of expensive aborts, since undone writes must be rolled back in
//! place and the touched orecs' versions bumped.
//!
//! Log storage lives in the caller-provided [`LogBufs`] arena (cleared,
//! never freed, between attempts): `reads`/`locks` hold
//! `(orec index, observed unlocked value)` pairs and `undo` holds
//! `(word address, previous value)`.

use super::tword_at;
use crate::arena::{LogBufs, SMALL_WRITES};
use crate::error::Abort;
use crate::fault::{self, FaultSite};
use crate::orec::{self, OrecValue};
use crate::runtime::RtInner;

/// Per-attempt state for the eager engine. The logs themselves live in the
/// thread's arena ([`LogBufs`]), passed into every operation.
#[derive(Debug)]
pub(crate) struct EagerTx {
    tx_id: u64,
    start_time: u64,
}

/// Did this transaction lock `idx`, and if so with what pre-lock value?
fn lock_prev(locks: &[(usize, OrecValue)], idx: usize) -> Option<OrecValue> {
    locks.iter().rev().find(|(i, _)| *i == idx).map(|(_, p)| *p)
}

/// Inline small-write scan over the most recent undo entries (the eager
/// twin of the redo log's [`SMALL_WRITES`] window): a word rewritten while
/// its orec is already ours needs no second undo entry — rollback replays
/// in reverse, so only the oldest entry per address matters. Duplicates
/// older than the window are pushed again, which is merely redundant.
#[inline]
fn undo_recently_logged(undo: &[(usize, u64)], addr: usize) -> bool {
    undo.iter().rev().take(SMALL_WRITES).any(|&(a, _)| a == addr)
}

impl EagerTx {
    pub(crate) fn begin(rt: &RtInner, tx_id: u64) -> Self {
        EagerTx {
            tx_id,
            // Own-shard load + cached cross-shard view: no full clock scan
            // at begin. A stale-low snapshot costs at most an extension.
            start_time: rt.clock.now_cached(),
        }
    }

    pub(crate) fn is_read_only(&self, bufs: &LogBufs) -> bool {
        bufs.locks.is_empty()
    }

    /// Revalidates the read set; on success the snapshot may be extended to
    /// `new_time` by the caller.
    fn validate(&self, rt: &RtInner, bufs: &LogBufs) -> Result<(), Abort> {
        // Fault site: callers treat a validation Err exactly like a real
        // conflict, and a panic here finds the undo log and lock set
        // intact for replay.
        fault::inject(FaultSite::Validate)?;
        for &(idx, observed) in &bufs.reads {
            let cur = rt.orecs.load(idx);
            if cur == observed {
                continue;
            }
            if orec::is_locked(cur) && orec::owner_of(cur) == self.tx_id {
                // We locked this orec after reading it; the read is stale
                // only if someone committed in between (pre-lock value
                // differs from what we read past).
                if lock_prev(&bufs.locks, idx) == Some(observed) {
                    continue;
                }
            }
            rt.orecs.note_conflict(idx);
            return Err(Abort::Conflict);
        }
        Ok(())
    }

    /// TinySTM-style timestamp extension: revalidate, then move the
    /// snapshot forward. This is the one place the read path pays a full
    /// cross-shard clock scan ([`crate::clock::ShardedClock::sync`]) —
    /// TLC-style, synchronization only on validation pressure.
    fn extend(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<(), Abort> {
        let now = rt.clock.sync();
        bufs.shard_syncs += 1;
        self.validate(rt, bufs)?;
        self.start_time = now;
        bufs.extensions += 1;
        Ok(())
    }

    pub(crate) fn read_word(
        &mut self,
        rt: &RtInner,
        bufs: &mut LogBufs,
        addr: usize,
    ) -> Result<u64, Abort> {
        let idx = rt.orecs.index_of(addr);
        loop {
            let o1 = rt.orecs.load(idx);
            if orec::is_locked(o1) {
                if orec::owner_of(o1) == self.tx_id {
                    // Write-through: our own writes are already in place.
                    return Ok(tword_at(addr).load_direct());
                }
                rt.orecs.note_conflict(idx);
                return Err(Abort::Conflict);
            }
            let v = tword_at(addr).load_direct();
            let o2 = rt.orecs.load(idx);
            if o1 != o2 {
                continue; // changed under us; re-sample
            }
            if orec::version_of(o1) <= self.start_time {
                // A duplicate entry would only make validation longer:
                // keep the latest consistent observation (it can differ
                // from the logged one only after an extension refreshed
                // the whole read set).
                if let Some(slot) = bufs.read_slot_or_append(idx, o1) {
                    bufs.reads[slot].1 = o1;
                    bufs.dedup_hits += 1;
                }
                return Ok(v);
            }
            self.extend(rt, bufs)?;
        }
    }

    pub(crate) fn write_word(
        &mut self,
        rt: &RtInner,
        bufs: &mut LogBufs,
        addr: usize,
        v: u64,
    ) -> Result<(), Abort> {
        // Fault site: before any state for this word is touched, so an
        // injected abort/panic leaves the undo log consistent.
        fault::inject(FaultSite::OrecAcquire)?;
        let idx = rt.orecs.index_of(addr);
        loop {
            let o = rt.orecs.load(idx);
            if orec::is_locked(o) {
                if orec::owner_of(o) == self.tx_id {
                    let w = tword_at(addr);
                    let cur = w.load_direct();
                    if cur == v {
                        // Silent store under our own lock: the word (ours
                        // since we hold the orec) already reads `v`.
                        bufs.silent_elisions += 1;
                        return Ok(());
                    }
                    if !undo_recently_logged(&bufs.undo, addr) {
                        bufs.undo.push((addr, cur));
                    }
                    w.store_direct(v);
                    return Ok(());
                }
                rt.orecs.note_conflict(idx);
                return Err(Abort::Conflict);
            }
            if orec::version_of(o) > self.start_time {
                self.extend(rt, bufs)?;
                continue;
            }
            if tword_at(addr).load_direct() == v {
                // Silent-store elision: the committed word already holds
                // `v` (consistent iff the orec has not moved under the
                // value read). Log the orec as a READ instead of locking —
                // commit-time validation still covers the location, so a
                // concurrent writer changing it aborts us exactly as a real
                // write-write conflict would.
                if rt.orecs.load(idx) != o {
                    continue; // changed under the value read; re-sample
                }
                if let Some(slot) = bufs.read_slot_or_append(idx, o) {
                    bufs.reads[slot].1 = o;
                }
                bufs.silent_elisions += 1;
                return Ok(());
            }
            if rt.orecs.try_update(idx, o, orec::locked_by(self.tx_id)) {
                bufs.locks.push((idx, o));
                let w = tword_at(addr);
                bufs.undo.push((addr, w.load_direct()));
                w.store_direct(v);
                return Ok(());
            }
            // CAS raced; re-sample.
        }
    }

    pub(crate) fn commit(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<u64, Abort> {
        // Fault site: commit entry. Locks and undo are intact, so both the
        // Err path (rollback below) and a panic are fully recoverable.
        if let Err(e) = fault::inject(FaultSite::CommitLock) {
            self.rollback(rt, bufs);
            return Err(e);
        }
        if bufs.locks.is_empty() {
            // Invisible reads were validated at read/extend time against a
            // snapshot; a read-only transaction is serializable at its
            // snapshot and commits without touching the clock.
            bufs.clear();
            return Ok(self.start_time);
        }
        // Fault site: clock advance. Nothing published yet.
        if let Err(e) = fault::inject(FaultSite::ClockTick) {
            self.rollback(rt, bufs);
            return Err(e);
        }
        let (end, revalidate) = rt.clock.commit_tick(self.start_time);
        if revalidate {
            // Some shard moved past our snapshot: a transaction committed
            // since we started, so the read set must be revalidated.
            bufs.clock_retries += 1;
            if self.validate(rt, bufs).is_err() {
                self.rollback(rt, bufs);
                return Err(Abort::Conflict);
            }
        } else {
            // GV5-style conflict-free path: no shard moved past our
            // snapshot even after our own CAS published, so no transaction
            // committed since we started — validation elided.
            bufs.clock_elisions += 1;
        }
        for &(idx, _) in &bufs.locks {
            rt.orecs.release(idx, orec::unlocked_at(end));
        }
        bufs.clear();
        // `end` came from `commit_tick`, so it exceeds every timestamp
        // published before this attempt's write-set locks became visible
        // — later committers on overlapping data mint strictly larger
        // stamps.
        Ok(end)
    }

    pub(crate) fn rollback(&mut self, rt: &RtInner, bufs: &mut LogBufs) {
        // Undo in reverse so overlapping writes restore the oldest value.
        for &(addr, old) in bufs.undo.iter().rev() {
            tword_at(addr).store_direct(old);
        }
        if !bufs.locks.is_empty() {
            // Bump versions: concurrent readers may have seen our
            // intermediate values and must fail validation.
            let t = rt.clock.tick();
            for &(idx, _) in &bufs.locks {
                rt.orecs.release(idx, orec::unlocked_at(t));
            }
        }
        bufs.clear();
    }

    /// Caller holds the serial lock exclusively. Validate, then publish:
    /// writes are already in place, so releasing our orecs at a fresh
    /// timestamp completes the transition to uninstrumented execution.
    pub(crate) fn make_irrevocable(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<(), Abort> {
        if self.validate(rt, bufs).is_err() {
            self.rollback(rt, bufs);
            return Err(Abort::Conflict);
        }
        if !bufs.locks.is_empty() {
            let end = rt.clock.tick();
            for &(idx, _) in &bufs.locks {
                rt.orecs.release(idx, orec::unlocked_at(end));
            }
        }
        bufs.clear();
        Ok(())
    }
}
