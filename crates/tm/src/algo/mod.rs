//! The STM algorithm engines evaluated in the paper's §4 (Figure 11).
//!
//! * [`eager`] — the GCC default method group: encounter-time orec locking,
//!   write-through (direct update) with an undo log.
//! * [`lazy`] — the paper's "Lazy" variant: same orec table, but buffered
//!   (redo-log) updates with commit-time locking.
//! * [`norec`] — NOrec \[Dalessandro et al., PPoPP 2010\]: no ownership
//!   records at all; a single global sequence lock plus value-based
//!   validation.
//!
//! Engines operate on raw word addresses. The public API (`Tx<'env>`)
//! guarantees every address passed in outlives the transaction, so the
//! internal `usize -> &TWord` casts are sound.

pub mod eager;
pub mod lazy;
pub mod norec;

use crate::arena::LogBufs;
use crate::cell::TWord;
use crate::error::Abort;
use crate::runtime::RtInner;

/// Which algorithm a runtime uses for instrumented transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// GCC default: encounter-time locking, write-through, undo log.
    #[default]
    Eager,
    /// Commit-time locking over the same orec table, redo log.
    Lazy,
    /// Global sequence lock + value-based validation, redo log.
    Norec,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Eager => write!(f, "gcc-eager"),
            Algorithm::Lazy => write!(f, "lazy"),
            Algorithm::Norec => write!(f, "norec"),
        }
    }
}

impl Algorithm {
    /// Packs the algorithm into the runtime's atomic config word (the live
    /// algorithm is swappable by [`crate::TmRuntime::switch_config`]).
    pub(crate) fn encode(self) -> u8 {
        match self {
            Algorithm::Eager => 0,
            Algorithm::Lazy => 1,
            Algorithm::Norec => 2,
        }
    }

    pub(crate) fn decode(code: u8) -> Algorithm {
        match code {
            0 => Algorithm::Eager,
            1 => Algorithm::Lazy,
            2 => Algorithm::Norec,
            other => unreachable!("invalid algorithm code {other}"),
        }
    }
}

/// Reinterprets a stored word address. Soundness: addresses enter engines
/// only through `Tx<'env>` methods whose signatures force the referent to
/// outlive the transaction.
#[inline]
pub(crate) fn tword_at<'a>(addr: usize) -> &'a TWord {
    unsafe { &*(addr as *const TWord) }
}

/// Per-attempt algorithm state.
#[derive(Debug)]
pub(crate) enum Engine {
    Eager(eager::EagerTx),
    Lazy(lazy::LazyTx),
    Norec(norec::NorecTx),
    /// Uninstrumented direct access: serial-irrevocable transactions.
    Serial,
}

impl Engine {
    pub(crate) fn begin(rt: &RtInner, tx_id: u64) -> Engine {
        match rt.algorithm() {
            Algorithm::Eager => Engine::Eager(eager::EagerTx::begin(rt, tx_id)),
            Algorithm::Lazy => Engine::Lazy(lazy::LazyTx::begin(rt, tx_id)),
            Algorithm::Norec => Engine::Norec(norec::NorecTx::begin(rt)),
        }
    }

    #[inline]
    pub(crate) fn read_word(
        &mut self,
        rt: &RtInner,
        bufs: &mut LogBufs,
        addr: usize,
    ) -> Result<u64, Abort> {
        match self {
            Engine::Eager(e) => e.read_word(rt, bufs, addr),
            Engine::Lazy(e) => e.read_word(rt, bufs, addr),
            Engine::Norec(e) => e.read_word(rt, bufs, addr),
            Engine::Serial => Ok(tword_at(addr).load_direct()),
        }
    }

    #[inline]
    pub(crate) fn write_word(
        &mut self,
        rt: &RtInner,
        bufs: &mut LogBufs,
        addr: usize,
        v: u64,
    ) -> Result<(), Abort> {
        match self {
            Engine::Eager(e) => e.write_word(rt, bufs, addr, v),
            Engine::Lazy(e) => e.write_word(rt, bufs, addr, v),
            Engine::Norec(e) => e.write_word(rt, bufs, addr, v),
            Engine::Serial => {
                tword_at(addr).store_direct(v);
                Ok(())
            }
        }
    }

    /// True if this attempt has written nothing (read-only commit path).
    pub(crate) fn is_read_only(&self, bufs: &LogBufs) -> bool {
        match self {
            Engine::Eager(e) => e.is_read_only(bufs),
            Engine::Lazy(e) => e.is_read_only(bufs),
            Engine::Norec(e) => e.is_read_only(bufs),
            Engine::Serial => false,
        }
    }

    /// Attempts to commit. On `Err` the engine has already rolled back.
    ///
    /// On success returns the attempt's *commit stamp*: a position in the
    /// runtime's global time base (versioned clock for eager/lazy, sequence
    /// lock for norec) such that any two committed transactions with
    /// overlapping write sets carry stamps ordered consistently with their
    /// real-time commit order. Read-only commits reuse their snapshot. A
    /// serial-irrevocable attempt has no engine stamp; `commit_point` mints
    /// one while still holding the serial lock exclusively.
    pub(crate) fn commit(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<u64, Abort> {
        match self {
            Engine::Eager(e) => e.commit(rt, bufs),
            Engine::Lazy(e) => e.commit(rt, bufs),
            Engine::Norec(e) => e.commit(rt, bufs),
            Engine::Serial => Ok(0),
        }
    }

    /// Rolls back an attempt that will not commit. Must leave no lock
    /// held: this is also the panic-recovery path, invoked while an
    /// unwind is in flight.
    pub(crate) fn rollback(&mut self, rt: &RtInner, bufs: &mut LogBufs) {
        match self {
            Engine::Eager(e) => e.rollback(rt, bufs),
            Engine::Lazy(e) => e.rollback(rt, bufs),
            Engine::Norec(e) => e.rollback(rt, bufs),
            // Serial-irrevocable effects are uninstrumented direct writes;
            // there is nothing to undo (documented: like a panic inside a
            // lock-based critical section).
            Engine::Serial => {}
        }
    }

    /// Upgrades to irrevocable mode. The caller must already hold the
    /// serial lock exclusively (all other transactions drained). On success
    /// the engine has published every buffered effect and `self` becomes
    /// [`Engine::Serial`]; on failure the attempt must be aborted.
    pub(crate) fn make_irrevocable(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<(), Abort> {
        match self {
            Engine::Eager(e) => e.make_irrevocable(rt, bufs)?,
            Engine::Lazy(e) => e.make_irrevocable(rt, bufs)?,
            Engine::Norec(e) => e.make_irrevocable(rt, bufs)?,
            Engine::Serial => return Ok(()),
        }
        *self = Engine::Serial;
        Ok(())
    }
}
