//! The NOrec engine \[Dalessandro, Spear & Scott, PPoPP 2010\]: no
//! ownership records; one global sequence lock plus value-based validation.
//!
//! The paper found that on memcached "the frequency of small writer
//! transactions induced a bottleneck on internal NOrec metadata" — i.e. on
//! exactly the [`crate::clock::SeqLock`] this module serializes commits
//! through.

use std::collections::HashMap;

use super::tword_at;
use crate::error::Abort;
use crate::runtime::RtInner;

/// Per-attempt state for the NOrec engine.
#[derive(Debug)]
pub(crate) struct NorecTx {
    /// Value of the global sequence lock this attempt is consistent with.
    snapshot: u64,
    /// Value-based read log: (word address, value read).
    reads: Vec<(usize, u64)>,
    /// Redo log in program order.
    writes: Vec<(usize, u64)>,
    wmap: HashMap<usize, usize>,
}

impl NorecTx {
    pub(crate) fn begin(rt: &RtInner) -> Self {
        NorecTx {
            snapshot: rt.seqlock.wait_even(),
            reads: Vec::with_capacity(16),
            writes: Vec::with_capacity(8),
            wmap: HashMap::new(),
        }
    }

    pub(crate) fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Value-based validation: re-read every logged location and compare.
    /// On success the snapshot advances to the current sequence value.
    fn validate(&mut self, rt: &RtInner) -> Result<(), Abort> {
        loop {
            let t = rt.seqlock.wait_even();
            for &(addr, v) in &self.reads {
                if tword_at(addr).load_direct() != v {
                    return Err(Abort::Conflict);
                }
            }
            if rt.seqlock.load() == t {
                self.snapshot = t;
                return Ok(());
            }
            // A committer raced our validation; try again.
        }
    }

    pub(crate) fn read_word(&mut self, rt: &RtInner, addr: usize) -> Result<u64, Abort> {
        if let Some(&i) = self.wmap.get(&addr) {
            return Ok(self.writes[i].1);
        }
        loop {
            let v = tword_at(addr).load_direct();
            let t = rt.seqlock.load();
            if t == self.snapshot {
                self.reads.push((addr, v));
                return Ok(v);
            }
            // Sequence moved since our snapshot: revalidate (which also
            // advances the snapshot), then re-read.
            self.validate(rt)?;
        }
    }

    pub(crate) fn write_word(&mut self, _rt: &RtInner, addr: usize, v: u64) -> Result<(), Abort> {
        match self.wmap.entry(addr) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.writes[*e.get()].1 = v;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.writes.len());
                self.writes.push((addr, v));
            }
        }
        Ok(())
    }

    pub(crate) fn commit(&mut self, rt: &RtInner) -> Result<(), Abort> {
        if self.writes.is_empty() {
            // Read-only: already consistent at `snapshot`.
            self.reset();
            return Ok(());
        }
        while !rt.seqlock.try_begin_commit(self.snapshot) {
            if self.validate(rt).is_err() {
                self.reset();
                return Err(Abort::Conflict);
            }
        }
        for &(addr, v) in &self.writes {
            tword_at(addr).store_direct(v);
        }
        rt.seqlock.end_commit(self.snapshot);
        self.reset();
        Ok(())
    }

    fn reset(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.wmap.clear();
    }

    pub(crate) fn rollback(&mut self) {
        self.reset();
    }

    /// Caller holds the serial lock exclusively, so no other transaction is
    /// running; still take the sequence lock for the write-back so the
    /// global time base reflects the update.
    pub(crate) fn make_irrevocable(&mut self, rt: &RtInner) -> Result<(), Abort> {
        while !rt.seqlock.try_begin_commit(self.snapshot) {
            if self.validate(rt).is_err() {
                self.reset();
                return Err(Abort::Conflict);
            }
        }
        for &(addr, v) in &self.writes {
            tword_at(addr).store_direct(v);
        }
        rt.seqlock.end_commit(self.snapshot);
        self.reset();
        Ok(())
    }
}
