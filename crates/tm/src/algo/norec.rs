//! The NOrec engine \[Dalessandro, Spear & Scott, PPoPP 2010\]: no
//! ownership records; one global sequence lock plus value-based validation.
//!
//! The paper found that on memcached "the frequency of small writer
//! transactions induced a bottleneck on internal NOrec metadata" — i.e. on
//! exactly the [`crate::clock::SeqLock`] this module serializes commits
//! through.
//!
//! Buffer roles in [`LogBufs`]: `reads` is the value-based read log
//! `(word address, value read)`, `writes` the redo log, `wmap` the redo
//! index past the inline small-write window.

use super::tword_at;
use crate::arena::LogBufs;
use crate::error::Abort;
use crate::fault::{self, FaultSite};
use crate::runtime::RtInner;

/// Per-attempt state for the NOrec engine; logs live in the arena.
#[derive(Debug)]
pub(crate) struct NorecTx {
    /// Value of the global sequence lock this attempt is consistent with.
    snapshot: u64,
    /// True while this attempt holds the sequence lock (between a
    /// successful `try_begin_commit` and `end_commit`). Rollback uses it
    /// to release the lock if a panic ever unwinds out of that window —
    /// no fault is injected there, but user-visible liveness must not
    /// depend on that placement staying true forever.
    committing: bool,
}

impl NorecTx {
    pub(crate) fn begin(rt: &RtInner) -> Self {
        NorecTx {
            snapshot: rt.seqlock.wait_even(),
            committing: false,
        }
    }

    pub(crate) fn is_read_only(&self, bufs: &LogBufs) -> bool {
        bufs.writes.is_empty()
    }

    /// Value-based validation: re-read every logged location and compare.
    /// On success the snapshot advances to the current sequence value —
    /// NOrec's flavor of snapshot extension.
    fn validate(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<(), Abort> {
        // Fault site: the sequence lock is never held here (commit only
        // validates after a failed try_begin_commit), so an injected
        // abort/panic is recovered by a plain log clear.
        fault::inject(FaultSite::Validate)?;
        loop {
            let t = rt.seqlock.wait_even();
            for &(addr, v) in &bufs.reads {
                if tword_at(addr).load_direct() != v {
                    return Err(Abort::Conflict);
                }
            }
            if rt.seqlock.load() == t {
                if t != self.snapshot {
                    bufs.extensions += 1;
                }
                self.snapshot = t;
                return Ok(());
            }
            // A committer raced our validation; try again.
        }
    }

    pub(crate) fn read_word(
        &mut self,
        rt: &RtInner,
        bufs: &mut LogBufs,
        addr: usize,
    ) -> Result<u64, Abort> {
        if let Some(v) = bufs.redo_lookup(addr) {
            return Ok(v);
        }
        loop {
            let v = tword_at(addr).load_direct();
            let t = rt.seqlock.load();
            if t == self.snapshot {
                // Already logged: refresh the observed value (both
                // observations are consistent at `snapshot`) instead of
                // appending a duplicate for validation to re-read.
                if let Some(slot) = bufs.read_slot_or_append(addr, v) {
                    bufs.reads[slot].1 = v;
                    bufs.dedup_hits += 1;
                }
                return Ok(v);
            }
            // Sequence moved since our snapshot: revalidate (which also
            // advances the snapshot), then re-read.
            self.validate(rt, bufs)?;
        }
    }

    pub(crate) fn write_word(
        &mut self,
        rt: &RtInner,
        bufs: &mut LogBufs,
        addr: usize,
        v: u64,
    ) -> Result<(), Abort> {
        // Silent-store elision: if the committed word (read consistently at
        // our snapshot) already holds `v`, log it as a value-based READ
        // instead of buffering — validation re-reads it at commit, so the
        // location stays covered while the write set (and the write-back
        // under the sequence lock) shrinks. Addresses already buffered must
        // stay buffered.
        if bufs.redo_lookup(addr).is_none() {
            let cur = tword_at(addr).load_direct();
            if rt.seqlock.load() == self.snapshot && cur == v {
                if let Some(slot) = bufs.read_slot_or_append(addr, cur) {
                    bufs.reads[slot].1 = cur;
                }
                bufs.silent_elisions += 1;
                return Ok(());
            }
        }
        bufs.redo_record(addr, v);
        Ok(())
    }

    pub(crate) fn commit(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<u64, Abort> {
        // Fault site: commit entry, before the sequence lock is contended.
        if let Err(e) = fault::inject(FaultSite::CommitLock) {
            bufs.clear();
            return Err(e);
        }
        if bufs.writes.is_empty() {
            // Read-only: already consistent at `snapshot`.
            bufs.clear();
            return Ok(self.snapshot);
        }
        // Seqlock-bump elision: a write set whose every buffered value
        // already equals committed memory (e.g. a read-modify-write that
        // settled back on the original value) publishes nothing — the
        // write-back would be a no-op — so the sequence bump that would
        // invalidate every reader's seqlock line can be skipped. A cheap
        // racy pre-scan filters; the loop below then re-checks BOTH logs
        // inside one even-stable window, which makes the elided commit
        // exactly a read-only transaction serialized at `t`: its reads are
        // current at `t`, its writes leave memory bit-identical, and no
        // reader can observe a torn snapshot because nothing is written
        // and nothing is bumped.
        if bufs.writes.iter().all(|&(a, v)| tword_at(a).load_direct() == v) {
            loop {
                let t = rt.seqlock.wait_even();
                let reads_ok = bufs.reads.iter().all(|&(a, v)| tword_at(a).load_direct() == v);
                let writes_ok = bufs.writes.iter().all(|&(a, v)| tword_at(a).load_direct() == v);
                if rt.seqlock.load() != t {
                    continue; // a committer raced the window; re-check
                }
                if !reads_ok {
                    bufs.clear();
                    return Err(Abort::Conflict);
                }
                if writes_ok {
                    self.snapshot = t;
                    bufs.seqlock_elisions += 1;
                    bufs.clear();
                    return Ok(t);
                }
                // Writes no longer silent (memory moved under the value):
                // the window doubled as a validation, so extend to `t` and
                // take the ordinary bumping path.
                if t != self.snapshot {
                    bufs.extensions += 1;
                }
                self.snapshot = t;
                break;
            }
        }
        // NOrec's commit CAS *is* its clock tick: a first-try acquisition
        // means the snapshot was still current — the conflict-free path the
        // clock-elision counters gauge. Every lost CAS is a seqlock retry
        // (revalidate, then try again at the advanced snapshot).
        let mut first_try = true;
        while !rt.seqlock.try_begin_commit(self.snapshot) {
            first_try = false;
            bufs.clock_retries += 1;
            if self.validate(rt, bufs).is_err() {
                bufs.clear();
                return Err(Abort::Conflict);
            }
        }
        if first_try {
            bufs.clock_elisions += 1;
        }
        self.committing = true;
        for &(addr, v) in &bufs.writes {
            tword_at(addr).store_direct(v);
        }
        rt.seqlock.end_commit(self.snapshot);
        self.committing = false;
        bufs.clear();
        // `end_commit` published snapshot+2 (odd while held, even after):
        // that even value is this commit's position in the global order.
        Ok(self.snapshot + 2)
    }

    pub(crate) fn rollback(&mut self, rt: &RtInner, bufs: &mut LogBufs) {
        if self.committing {
            // Defensive: a panic unwound while we held the sequence lock.
            // Release it so the runtime stays live; the partially
            // published write-back is covered by the sequence bump, which
            // forces every concurrent reader to revalidate.
            rt.seqlock.end_commit(self.snapshot);
            self.committing = false;
        }
        bufs.clear();
    }

    /// Caller holds the serial lock exclusively, so no other transaction is
    /// running; still take the sequence lock for the write-back so the
    /// global time base reflects the update.
    pub(crate) fn make_irrevocable(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<(), Abort> {
        while !rt.seqlock.try_begin_commit(self.snapshot) {
            if self.validate(rt, bufs).is_err() {
                bufs.clear();
                return Err(Abort::Conflict);
            }
        }
        self.committing = true;
        for &(addr, v) in &bufs.writes {
            tword_at(addr).store_direct(v);
        }
        rt.seqlock.end_commit(self.snapshot);
        self.committing = false;
        bufs.clear();
        Ok(())
    }
}
