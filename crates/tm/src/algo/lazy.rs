//! The "Lazy" engine (paper §4): the same orec lock table as the GCC
//! default, but buffered (redo-log) updates with commit-time locking —
//! TL2-style.
//!
//! The paper found this algorithm abort-prone on memcached (14 aborts per
//! commit at 12 threads) and penalized by its redo log: `memcpy`-style
//! byte stores must be buffered and then found again by later word reads.

use std::collections::HashMap;

use super::tword_at;
use crate::error::Abort;
use crate::orec::{self, OrecValue};
use crate::runtime::RtInner;

/// Per-attempt state for the lazy engine.
#[derive(Debug)]
pub(crate) struct LazyTx {
    tx_id: u64,
    start_time: u64,
    /// (orec index, observed unlocked value).
    reads: Vec<(usize, OrecValue)>,
    /// Redo log in program order: (word address, value).
    writes: Vec<(usize, u64)>,
    /// address -> index into `writes` (the redo-lookup cost the paper
    /// highlights for byte-wise stores).
    wmap: HashMap<usize, usize>,
}

impl LazyTx {
    pub(crate) fn begin(rt: &RtInner, tx_id: u64) -> Self {
        LazyTx {
            tx_id,
            start_time: rt.clock.now(),
            reads: Vec::with_capacity(16),
            writes: Vec::with_capacity(8),
            wmap: HashMap::new(),
        }
    }

    pub(crate) fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    fn validate(&self, rt: &RtInner, held: &[(usize, OrecValue)]) -> Result<(), Abort> {
        for &(idx, observed) in &self.reads {
            let cur = rt.orecs.load(idx);
            if cur == observed {
                continue;
            }
            if orec::is_locked(cur) && orec::owner_of(cur) == self.tx_id {
                // Locked by us during this commit; valid iff the pre-lock
                // value is what we observed when reading.
                if held
                    .iter()
                    .any(|&(i, prev)| i == idx && prev == observed)
                {
                    continue;
                }
            }
            return Err(Abort::Conflict);
        }
        Ok(())
    }

    fn extend(&mut self, rt: &RtInner) -> Result<(), Abort> {
        let now = rt.clock.now();
        self.validate(rt, &[])?;
        self.start_time = now;
        Ok(())
    }

    pub(crate) fn read_word(&mut self, rt: &RtInner, addr: usize) -> Result<u64, Abort> {
        if let Some(&i) = self.wmap.get(&addr) {
            return Ok(self.writes[i].1);
        }
        let idx = rt.orecs.index_of(addr);
        loop {
            let o1 = rt.orecs.load(idx);
            if orec::is_locked(o1) {
                // We never hold locks while executing, so this is always a
                // concurrent committer: conflict.
                return Err(Abort::Conflict);
            }
            let v = tword_at(addr).load_direct();
            let o2 = rt.orecs.load(idx);
            if o1 != o2 {
                continue;
            }
            if orec::version_of(o1) <= self.start_time {
                self.reads.push((idx, o1));
                return Ok(v);
            }
            self.extend(rt)?;
        }
    }

    pub(crate) fn write_word(&mut self, _rt: &RtInner, addr: usize, v: u64) -> Result<(), Abort> {
        match self.wmap.entry(addr) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.writes[*e.get()].1 = v;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.writes.len());
                self.writes.push((addr, v));
            }
        }
        Ok(())
    }

    pub(crate) fn commit(&mut self, rt: &RtInner) -> Result<(), Abort> {
        if self.writes.is_empty() {
            return Ok(());
        }
        // Acquire every distinct orec covering the write set.
        let mut held: Vec<(usize, OrecValue)> = Vec::with_capacity(self.writes.len());
        for &(addr, _) in &self.writes {
            let idx = rt.orecs.index_of(addr);
            if held.iter().any(|&(i, _)| i == idx) {
                continue;
            }
            loop {
                let o = rt.orecs.load(idx);
                if orec::is_locked(o) {
                    if orec::owner_of(o) == self.tx_id {
                        break; // hash collision onto an orec we already hold
                    }
                    self.release_held(rt, &held, None);
                    self.reset();
                    return Err(Abort::Conflict);
                }
                if rt.orecs.try_update(idx, o, orec::locked_by(self.tx_id)) {
                    held.push((idx, o));
                    break;
                }
            }
        }
        let end = rt.clock.tick();
        if end > self.start_time + 1 && self.validate(rt, &held).is_err() {
            self.release_held(rt, &held, None);
            self.reset();
            return Err(Abort::Conflict);
        }
        for &(addr, v) in &self.writes {
            tword_at(addr).store_direct(v);
        }
        self.release_held(rt, &held, Some(end));
        self.reset();
        Ok(())
    }

    /// Releases held orecs — to their pre-lock values on failure (`None`),
    /// or to the commit timestamp on success.
    fn release_held(&self, rt: &RtInner, held: &[(usize, OrecValue)], end: Option<u64>) {
        for &(idx, prev) in held {
            rt.orecs.release(idx, end.map_or(prev, orec::unlocked_at));
        }
    }

    fn reset(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.wmap.clear();
    }

    pub(crate) fn rollback(&mut self) {
        // Nothing published; just drop the logs.
        self.reset();
    }

    /// Caller holds the serial lock exclusively: validate, then publish the
    /// redo log directly.
    pub(crate) fn make_irrevocable(&mut self, rt: &RtInner) -> Result<(), Abort> {
        if self.validate(rt, &[]).is_err() {
            self.reset();
            return Err(Abort::Conflict);
        }
        for &(addr, v) in &self.writes {
            tword_at(addr).store_direct(v);
        }
        self.reset();
        Ok(())
    }
}
