//! The "Lazy" engine (paper §4): the same orec lock table as the GCC
//! default, but buffered (redo-log) updates with commit-time locking —
//! TL2-style.
//!
//! The paper found this algorithm abort-prone on memcached (14 aborts per
//! commit at 12 threads) and penalized by its redo log: `memcpy`-style
//! byte stores must be buffered and then found again by later word reads.
//! That redo lookup used to be a `HashMap<usize, usize>` allocated per
//! attempt; it is now the arena's open-addressed
//! [`WriteMap`](crate::arena::WriteMap) with an inline small-write scan
//! (see [`LogBufs::redo_lookup`]), so a steady-state attempt allocates
//! nothing.
//!
//! Buffer roles in [`LogBufs`]: `reads` holds `(orec index, observed
//! unlocked value)`, `writes` the redo log (one entry per distinct word
//! address), `wmap` the redo index past the inline window, and `locks` the
//! commit-time held-lock scratch list.

use super::tword_at;
use crate::arena::LogBufs;
use crate::error::Abort;
use crate::fault::{self, FaultSite};
use crate::orec::{self, OrecValue};
use crate::runtime::RtInner;

/// Per-attempt state for the lazy engine; logs live in the arena.
#[derive(Debug)]
pub(crate) struct LazyTx {
    tx_id: u64,
    start_time: u64,
}

/// Revalidates the read set against the orec table. `held` is the
/// commit-time lock list: an orec we locked ourselves is valid iff its
/// pre-lock value is what the read observed.
fn validate(
    rt: &RtInner,
    tx_id: u64,
    reads: &[(usize, OrecValue)],
    held: &[(usize, OrecValue)],
) -> Result<(), Abort> {
    // Fault site: every caller treats a validation Err like a real
    // conflict and releases any held orecs; a panic here is recovered by
    // LazyTx::rollback, which releases `bufs.locks` to pre-lock values.
    fault::inject(FaultSite::Validate)?;
    for &(idx, observed) in reads {
        let cur = rt.orecs.load(idx);
        if cur == observed {
            continue;
        }
        if orec::is_locked(cur) && orec::owner_of(cur) == tx_id {
            // Locked by us during this commit; valid iff the pre-lock
            // value is what we observed when reading.
            if held.iter().any(|&(i, prev)| i == idx && prev == observed) {
                continue;
            }
        }
        rt.orecs.note_conflict(idx);
        return Err(Abort::Conflict);
    }
    Ok(())
}

impl LazyTx {
    pub(crate) fn begin(rt: &RtInner, tx_id: u64) -> Self {
        LazyTx {
            tx_id,
            // Own-shard load + cached cross-shard view; see the eager twin.
            start_time: rt.clock.now_cached(),
        }
    }

    pub(crate) fn is_read_only(&self, bufs: &LogBufs) -> bool {
        bufs.writes.is_empty()
    }

    fn extend(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<(), Abort> {
        // The one full cross-shard clock scan on the read path: TLC-style,
        // paid only under validation pressure.
        let now = rt.clock.sync();
        bufs.shard_syncs += 1;
        validate(rt, self.tx_id, &bufs.reads, &[])?;
        self.start_time = now;
        bufs.extensions += 1;
        Ok(())
    }

    pub(crate) fn read_word(
        &mut self,
        rt: &RtInner,
        bufs: &mut LogBufs,
        addr: usize,
    ) -> Result<u64, Abort> {
        if let Some(v) = bufs.redo_lookup(addr) {
            return Ok(v);
        }
        let idx = rt.orecs.index_of(addr);
        loop {
            let o1 = rt.orecs.load(idx);
            if orec::is_locked(o1) {
                // We never hold locks while executing, so this is always a
                // concurrent committer: conflict.
                rt.orecs.note_conflict(idx);
                return Err(Abort::Conflict);
            }
            let v = tword_at(addr).load_direct();
            let o2 = rt.orecs.load(idx);
            if o1 != o2 {
                continue;
            }
            if orec::version_of(o1) <= self.start_time {
                // Already logged: keep the latest consistent observation
                // instead of appending a duplicate.
                if let Some(slot) = bufs.read_slot_or_append(idx, o1) {
                    bufs.reads[slot].1 = o1;
                    bufs.dedup_hits += 1;
                }
                return Ok(v);
            }
            self.extend(rt, bufs)?;
        }
    }

    pub(crate) fn write_word(
        &mut self,
        rt: &RtInner,
        bufs: &mut LogBufs,
        addr: usize,
        v: u64,
    ) -> Result<(), Abort> {
        // Silent-store elision: a write whose value equals the committed
        // contents (read consistently at our snapshot) is logged as a READ
        // instead of buffered — validation still covers the location, so a
        // concurrent change aborts us like any read-write conflict, but the
        // commit never locks the orec or writes the word back. Addresses
        // already buffered must stay buffered (the redo value, not memory,
        // is what later reads and the write-back observe).
        if bufs.redo_lookup(addr).is_none() {
            let idx = rt.orecs.index_of(addr);
            let o1 = rt.orecs.load(idx);
            if !orec::is_locked(o1) && orec::version_of(o1) <= self.start_time {
                let cur = tword_at(addr).load_direct();
                if rt.orecs.load(idx) == o1 && cur == v {
                    if let Some(slot) = bufs.read_slot_or_append(idx, o1) {
                        bufs.reads[slot].1 = o1;
                    }
                    bufs.silent_elisions += 1;
                    return Ok(());
                }
            }
        }
        bufs.redo_record(addr, v);
        Ok(())
    }

    pub(crate) fn commit(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<u64, Abort> {
        // Fault site: commit entry, before any orec is taken.
        if let Err(e) = fault::inject(FaultSite::CommitLock) {
            bufs.clear();
            return Err(e);
        }
        let LogBufs {
            reads,
            writes,
            locks: held,
            clock_elisions,
            clock_retries,
            ..
        } = bufs;
        if writes.is_empty() {
            bufs.clear();
            return Ok(self.start_time);
        }
        // Acquire every distinct orec covering the write set. The redo log
        // holds one entry per word address (redo_record deduplicates), so
        // `writes.len()` is the deduplicated upper bound on held locks;
        // steady-state this reserve is a no-op against arena capacity.
        debug_assert!(held.is_empty());
        held.reserve(writes.len());
        for &(addr, _) in writes.iter() {
            // Fault site: commit-time orec acquisition. Held orecs so far
            // are in `held` (== bufs.locks), so the Err path below and a
            // panic (recovered by rollback) both release them to their
            // pre-lock values.
            if let Err(e) = fault::inject(FaultSite::OrecAcquire) {
                release_held(rt, held, None);
                bufs.clear();
                return Err(e);
            }
            let idx = rt.orecs.index_of(addr);
            if held.iter().any(|&(i, _)| i == idx) {
                continue; // hash collision onto an orec we already hold
            }
            loop {
                let o = rt.orecs.load(idx);
                if orec::is_locked(o) {
                    if orec::owner_of(o) == self.tx_id {
                        break; // hash collision onto an orec we already hold
                    }
                    rt.orecs.note_conflict(idx);
                    release_held(rt, held, None);
                    bufs.clear();
                    return Err(Abort::Conflict);
                }
                if rt.orecs.try_update(idx, o, orec::locked_by(self.tx_id)) {
                    held.push((idx, o));
                    break;
                }
            }
        }
        // Fault site: clock advance. Whole write set locked, nothing
        // published; releasing to pre-lock values undoes everything.
        if let Err(e) = fault::inject(FaultSite::ClockTick) {
            release_held(rt, held, None);
            bufs.clear();
            return Err(e);
        }
        let (end, revalidate) = rt.clock.commit_tick(self.start_time);
        if revalidate {
            // A shard moved past our snapshot: someone committed since we
            // started, revalidate the read set.
            *clock_retries += 1;
            if validate(rt, self.tx_id, reads, held).is_err() {
                release_held(rt, held, None);
                bufs.clear();
                return Err(Abort::Conflict);
            }
        } else {
            // GV5-style conflict-free path: no commit since our snapshot,
            // so the read set is provably current — validation elided.
            *clock_elisions += 1;
        }
        for &(addr, v) in writes.iter() {
            tword_at(addr).store_direct(v);
        }
        release_held(rt, held, Some(end));
        bufs.clear();
        // Same commit-stamp invariant as eager: `end` exceeds every stamp
        // published before our write locks became visible.
        Ok(end)
    }

    pub(crate) fn rollback(&mut self, rt: &RtInner, bufs: &mut LogBufs) {
        // Normally nothing is held here — commit releases its own locks on
        // every failure path — but a panic that unwinds out of the
        // commit-time acquisition loop (e.g. an injected fault) leaves its
        // partial lock set in `bufs.locks`; restore those orecs to their
        // pre-lock values so other threads are never blocked.
        release_held(rt, &bufs.locks, None);
        bufs.clear();
    }

    /// Caller holds the serial lock exclusively: validate, then publish the
    /// redo log directly.
    pub(crate) fn make_irrevocable(&mut self, rt: &RtInner, bufs: &mut LogBufs) -> Result<(), Abort> {
        if validate(rt, self.tx_id, &bufs.reads, &[]).is_err() {
            bufs.clear();
            return Err(Abort::Conflict);
        }
        for &(addr, v) in &bufs.writes {
            tword_at(addr).store_direct(v);
        }
        bufs.clear();
        Ok(())
    }
}

/// Releases held orecs — to their pre-lock values on failure (`None`),
/// or to the commit timestamp on success.
fn release_held(rt: &RtInner, held: &[(usize, OrecValue)], end: Option<u64>) {
    for &(idx, prev) in held {
        rt.orecs.release(idx, end.map_or(prev, orec::unlocked_at));
    }
}
