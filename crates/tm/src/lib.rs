//! # tm — a software transactional memory runtime in the image of GCC libitm
//!
//! This crate is the substrate for a reproduction of *"Transactionalizing
//! Legacy Code: an Experience Report Using GCC and Memcached"* (Ruan, Vyas,
//! Liu & Spear, ASPLOS 2014). It implements the runtime machinery of the
//! Draft C++ TM Specification as shipped in GCC 4.9.0, plus the §4
//! modifications the paper evaluates:
//!
//! * **Atomic vs relaxed transactions** — [`AtomicTx`] is statically unable
//!   to perform unsafe operations (the type system plays the role of GCC's
//!   `transaction_safe` checker); [`RelaxedTx`] may call
//!   [`RelaxedTx::unsafe_op`], which serializes the transaction first.
//! * **The global readers/writer serial lock** — every transaction holds it
//!   shared; serialization upgrades to exclusive ([`SerialLockMode`]
//!   selects GCC's behavior or the paper's "NoLock" runtime).
//! * **Three algorithms** ([`Algorithm`]) — GCC's eager write-through with
//!   undo logging, a Lazy commit-time-locking variant, and NOrec.
//! * **Four contention managers** ([`ContentionManager`]) — GCC's
//!   serialize-after-100, none, exponential backoff, and the hourglass.
//! * **onCommit / onAbort handlers** — [`Transaction::on_commit`] runs
//!   after commit *and* after all runtime locks are released, matching the
//!   GCC extension the paper relies on to desugar condition
//!   synchronization and logging.
//! * **Serialization accounting** — [`StatsSnapshot`] exposes the
//!   "In-Flight Switch" / "Start Serial" / "Abort Serial" columns of the
//!   paper's Tables 1–4.
//!
//! ## Quick start
//!
//! ```
//! use tm::{TCell, TmRuntime, Transaction};
//!
//! let rt = TmRuntime::default_runtime();
//! let a = TCell::new(100u64);
//! let b = TCell::new(0u64);
//!
//! // Transfer 30 from a to b, atomically.
//! rt.atomic(|tx| {
//!     let take = 30.min(tx.read(&a)?);
//!     tx.modify(&a, |v| v - take)?;
//!     tx.modify(&b, |v| v + take)?;
//!     Ok(())
//! });
//! assert_eq!((a.load_direct(), b.load_direct()), (70, 30));
//! ```
//!
//! ## Relaxed transactions and unsafe operations
//!
//! ```
//! use tm::{RelaxedPlan, TCell, TmRuntime, Transaction};
//!
//! let rt = TmRuntime::default_runtime();
//! let c = TCell::new(0u64);
//! let verbose = false;
//! rt.relaxed(RelaxedPlan::new(), |tx| {
//!     tx.write(&c, 1)?;
//!     if verbose {
//!         // I/O forces an in-flight switch to serial-irrevocable mode.
//!         tx.unsafe_op(|| eprintln!("stored"))?;
//!     }
//!     Ok(())
//! });
//! assert_eq!(rt.stats().in_flight_switch, 0); // verbose was false
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapt;
mod algo;
mod arena;
mod cell;
mod clock;
mod cm;
mod error;
pub mod fault;
pub mod layout;
mod orec;
mod runtime;
mod serial;
mod stats;
mod txn;
mod word;

pub use algo::Algorithm;
pub use cell::{TBytes, TCell, TWord};
pub use clock::{ClockShardStats, MAX_CLOCK_SHARDS};
pub use cm::ContentionManager;
pub use error::{cancel, Abort, Cancelled, TxError};
pub use runtime::{last_commit_stamp, SwitchError, TmRuntime, TmRuntimeBuilder, TxOptions};
pub use serial::SerialLockMode;
pub use stats::{take_thread_tally, LivenessSnapshot, StatsSnapshot, ThreadTally};
pub use txn::{AtomicTx, RelaxedPlan, RelaxedTx, Transaction};
pub use word::Word;

#[cfg(test)]
mod tests {
    use super::*;

    fn all_runtimes() -> Vec<TmRuntime> {
        let mut v = Vec::new();
        for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            v.push(
                TmRuntime::builder()
                    .algorithm(algo)
                    .contention_manager(ContentionManager::GCC_DEFAULT)
                    .build(),
            );
            v.push(
                TmRuntime::builder()
                    .algorithm(algo)
                    .contention_manager(ContentionManager::None)
                    .serial_lock(SerialLockMode::None)
                    .build(),
            );
        }
        v
    }

    #[test]
    fn atomic_increments_commit() {
        for rt in all_runtimes() {
            let c = TCell::new(0u64);
            for _ in 0..10 {
                rt.atomic(|tx| tx.fetch_add(&c, 1));
            }
            assert_eq!(c.load_direct(), 10, "{rt:?}");
        }
    }

    #[test]
    fn read_only_transactions_are_counted() {
        let rt = TmRuntime::default_runtime();
        let c = TCell::new(7u64);
        let v = rt.atomic(|tx| tx.read(&c));
        assert_eq!(v, 7);
        let s = rt.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.read_only_commits, 1);
    }

    #[test]
    fn multi_cell_consistency_across_threads() {
        // Invariant: a + b == 1000, transferred randomly.
        for rt in all_runtimes() {
            let a = std::sync::Arc::new(TCell::new(1000u64));
            let b = std::sync::Arc::new(TCell::new(0u64));
            let rt = std::sync::Arc::new(rt);
            let mut handles = vec![];
            for t in 0..4 {
                let (rt, a, b) = (rt.clone(), a.clone(), b.clone());
                handles.push(std::thread::spawn(move || {
                    for i in 0..300u64 {
                        let amt = (t as u64 + i) % 7;
                        rt.atomic(|tx| {
                            let av = tx.read(&*a)?;
                            let bv = tx.read(&*b)?;
                            assert_eq!(av + bv, 1000, "invariant broken inside txn");
                            let amt = amt.min(av);
                            tx.write(&*a, av - amt)?;
                            tx.write(&*b, bv + amt)?;
                            Ok(())
                        });
                        rt.atomic(|tx| {
                            let bv = tx.read(&*b)?;
                            let give = bv / 2;
                            tx.modify(&*b, |v| v - give)?;
                            tx.modify(&*a, |v| v + give)?;
                            Ok(())
                        });
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(a.load_direct() + b.load_direct(), 1000, "{:?}", rt.algorithm());
        }
    }

    #[test]
    fn concurrent_counter_is_exact() {
        for rt in all_runtimes() {
            let c = std::sync::Arc::new(TCell::new(0u64));
            let rt = std::sync::Arc::new(rt);
            let mut handles = vec![];
            for _ in 0..4 {
                let (rt, c) = (rt.clone(), c.clone());
                handles.push(std::thread::spawn(move || {
                    for _ in 0..500 {
                        rt.atomic(|tx| tx.fetch_add(&c, 1));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load_direct(), 2000, "{:?}", rt.algorithm());
        }
    }

    #[test]
    fn relaxed_in_flight_switch_runs_unsafe_op_once() {
        let rt = TmRuntime::default_runtime();
        let c = TCell::new(0u64);
        let side = std::cell::Cell::new(0u32);
        rt.relaxed(RelaxedPlan::new(), |tx| {
            tx.write(&c, 5)?;
            tx.unsafe_op(|| side.set(side.get() + 1))?;
            assert!(tx.is_irrevocable());
            Ok(())
        });
        assert_eq!(side.get(), 1);
        assert_eq!(c.load_direct(), 5);
        let s = rt.stats();
        assert_eq!(s.in_flight_switch, 1);
        assert_eq!(s.irrevocable_commits, 1);
    }

    #[test]
    fn relaxed_start_serial_counted() {
        let rt = TmRuntime::default_runtime();
        let c = TCell::new(0u64);
        rt.relaxed(RelaxedPlan::serial(), |tx| {
            tx.write(&c, 1)?;
            tx.unsafe_op(|| ())?; // already irrevocable: no extra switch
            Ok(())
        });
        let s = rt.stats();
        assert_eq!(s.start_serial, 1);
        assert_eq!(s.in_flight_switch, 0);
        assert_eq!(c.load_direct(), 1);
    }

    #[test]
    fn cancel_rolls_back() {
        let rt = TmRuntime::default_runtime();
        let c = TCell::new(3u64);
        let r = rt.try_atomic(|tx| {
            tx.write(&c, 999)?;
            cancel::<()>()
        });
        assert_eq!(r, Err(Cancelled));
        assert_eq!(c.load_direct(), 3);
        assert_eq!(rt.stats().cancels, 1);
    }

    #[test]
    #[should_panic(expected = "cannot cancel")]
    fn relaxed_cancel_panics() {
        let rt = TmRuntime::default_runtime();
        rt.relaxed(RelaxedPlan::new(), |_tx| cancel::<()>());
    }

    #[test]
    #[should_panic(expected = "serial lock was removed")]
    fn nolock_runtime_rejects_serialization() {
        let rt = TmRuntime::builder()
            .contention_manager(ContentionManager::None)
            .serial_lock(SerialLockMode::None)
            .build();
        rt.relaxed(RelaxedPlan::new(), |tx| tx.unsafe_op(|| ()).map(|_| ()));
    }

    #[test]
    #[should_panic(expected = "SerializeAfter requires the serial lock")]
    fn inconsistent_builder_panics() {
        let _ = TmRuntime::builder()
            .serial_lock(SerialLockMode::None)
            .build();
    }

    #[test]
    fn on_commit_runs_after_commit_only() {
        let rt = TmRuntime::default_runtime();
        let c = TCell::new(0u64);
        let fired = std::cell::Cell::new(false);
        rt.atomic(|tx| {
            tx.write(&c, 1)?;
            tx.on_commit(|| fired.set(true));
            assert!(!fired.get(), "handler must not run inside the txn");
            Ok(())
        });
        assert!(fired.get());
        assert_eq!(rt.stats().commit_handlers_run, 1);
    }

    #[test]
    fn on_commit_not_run_on_cancel() {
        let rt = TmRuntime::default_runtime();
        let fired = std::cell::Cell::new(false);
        let _ = rt.try_atomic(|tx| {
            tx.on_commit(|| fired.set(true));
            cancel::<()>()
        });
        assert!(!fired.get());
    }

    #[test]
    fn tbytes_transactional_roundtrip() {
        for rt in all_runtimes() {
            let b = TBytes::zeroed(37);
            let payload: Vec<u8> = (0..37u8).collect();
            rt.atomic(|tx| tx.write_bytes(&b, 0, &payload));
            let out = rt.atomic(|tx| tx.read_bytes_vec(&b));
            assert_eq!(out, payload, "{:?}", rt.algorithm());
        }
    }

    #[test]
    fn tbytes_unaligned_window_write() {
        for rt in all_runtimes() {
            let b = TBytes::from_slice(&[0xAA; 24]);
            rt.atomic(|tx| tx.write_bytes(&b, 5, b"hello world"));
            let v = b.to_vec_direct();
            assert_eq!(&v[5..16], b"hello world");
            assert_eq!(v[4], 0xAA);
            assert_eq!(v[16], 0xAA);
        }
    }

    #[test]
    fn byte_write_preserves_neighbors_in_word() {
        for rt in all_runtimes() {
            let b = TBytes::from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
            rt.atomic(|tx| tx.write_byte(&b, 3, 0xFF));
            assert_eq!(b.to_vec_direct(), vec![1, 2, 3, 0xFF, 5, 6, 7, 8]);
        }
    }

    #[test]
    fn aborted_attempts_do_not_leak_writes() {
        // Force at least one abort with two txns hammering the same cells
        // in opposite orders, then check the invariant.
        for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            let rt = std::sync::Arc::new(
                TmRuntime::builder()
                    .algorithm(algo)
                    .contention_manager(ContentionManager::None)
                    .serial_lock(SerialLockMode::None)
                    .build(),
            );
            let x = std::sync::Arc::new(TCell::new(0u64));
            let y = std::sync::Arc::new(TCell::new(0u64));
            let mut handles = vec![];
            for t in 0..2 {
                let (rt, x, y) = (rt.clone(), x.clone(), y.clone());
                handles.push(std::thread::spawn(move || {
                    for _ in 0..400 {
                        rt.atomic(|tx| {
                            if t == 0 {
                                tx.fetch_add(&x, 1)?;
                                tx.fetch_add(&y, 1)?;
                            } else {
                                tx.fetch_add(&y, 1)?;
                                tx.fetch_add(&x, 1)?;
                            }
                            Ok(())
                        });
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(x.load_direct(), 800, "{algo:?}");
            assert_eq!(y.load_direct(), 800, "{algo:?}");
        }
    }

    #[test]
    fn hourglass_runtime_makes_progress() {
        let rt = std::sync::Arc::new(
            TmRuntime::builder()
                .contention_manager(ContentionManager::Hourglass(4))
                .serial_lock(SerialLockMode::None)
                .build(),
        );
        let c = std::sync::Arc::new(TCell::new(0u64));
        let mut handles = vec![];
        for _ in 0..4 {
            let (rt, c) = (rt.clone(), c.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    rt.atomic(|tx| tx.fetch_add(&c, 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load_direct(), 1200);
    }

    #[test]
    fn backoff_runtime_makes_progress() {
        let rt = std::sync::Arc::new(
            TmRuntime::builder()
                .contention_manager(ContentionManager::Backoff { max_shift: 6 })
                .serial_lock(SerialLockMode::None)
                .build(),
        );
        let c = std::sync::Arc::new(TCell::new(0u64));
        let mut handles = vec![];
        for _ in 0..3 {
            let (rt, c) = (rt.clone(), c.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    rt.atomic(|tx| tx.fetch_add(&c, 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load_direct(), 600);
    }

    #[test]
    fn stats_transactions_column_counts_completions() {
        let rt = TmRuntime::default_runtime();
        let c = TCell::new(0u64);
        for _ in 0..5 {
            rt.atomic(|tx| tx.fetch_add(&c, 1));
        }
        assert_eq!(rt.stats().transactions(), 5);
    }

    #[test]
    fn thread_tally_tracks_commits() {
        let rt = TmRuntime::default_runtime();
        let c = TCell::new(0u64);
        let _ = take_thread_tally();
        for _ in 0..3 {
            rt.atomic(|tx| tx.fetch_add(&c, 1));
        }
        let t = take_thread_tally();
        assert_eq!(t.commits, 3);
    }
}

#[cfg(test)]
mod expr_tests {
    use super::*;

    #[test]
    fn transaction_expressions_roundtrip() {
        let rt = TmRuntime::default_runtime();
        let c = TCell::new(5u64);
        assert_eq!(rt.expr_read(&c), 5);
        rt.expr_write(&c, 9);
        assert_eq!(rt.expr_read(&c), 9);
        assert_eq!(rt.expr_modify(&c, |v| v + 1), 9, "returns previous value");
        assert_eq!(c.load_direct(), 10);
    }

    #[test]
    fn expression_reads_are_seq_cst_like() {
        // Two cells published together by a writer txn can never be seen
        // half-updated by expression reads (each expression is a full
        // transaction, so this follows from snapshot consistency).
        let rt = std::sync::Arc::new(TmRuntime::default_runtime());
        let a = std::sync::Arc::new(TCell::new(0u64));
        let b = std::sync::Arc::new(TCell::new(0u64));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let w = {
            let (rt, a, b, stop) = (rt.clone(), a.clone(), b.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    i += 1;
                    rt.atomic(|tx| {
                        tx.write(&*a, i)?;
                        tx.write(&*b, i)
                    });
                }
            })
        };
        for _ in 0..2000 {
            // a is written before b inside the txn; reading b then a as
            // separate expressions must observe b <= a.
            let vb = rt.expr_read(&*b);
            let va = rt.expr_read(&*a);
            assert!(vb <= va, "expression ordering violated: b={vb} a={va}");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn expression_modify_is_atomic_across_threads() {
        let rt = std::sync::Arc::new(TmRuntime::default_runtime());
        let c = std::sync::Arc::new(TCell::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (rt, c) = (rt.clone(), c.clone());
                s.spawn(move || {
                    for _ in 0..500 {
                        rt.expr_modify(&*c, |v| v + 1);
                    }
                });
            }
        });
        assert_eq!(c.load_direct(), 2000);
    }
}
