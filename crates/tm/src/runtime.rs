//! The [`TmRuntime`]: algorithm × contention manager × serial-lock mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::algo::{Algorithm, Engine};
use crate::arena::Arena;
use crate::clock::{GlobalClock, SeqLock};
use crate::cm::{exponential_backoff, ContentionManager, Hourglass};
use crate::cell::TCell;
use crate::error::{Abort, Cancelled};
use crate::orec::OrecTable;
use crate::serial::{SerialLock, SerialLockMode};
use crate::stats::{self, StatsSnapshot, TmStats};
use crate::txn::{AtomicTx, RelaxedPlan, RelaxedTx, Transaction, TxInner};

/// Shared state of one runtime. Engines and transactions hold `&RtInner`.
pub(crate) struct RtInner {
    pub(crate) algorithm: Algorithm,
    pub(crate) cm: ContentionManager,
    pub(crate) serial_mode: SerialLockMode,
    pub(crate) orecs: OrecTable,
    pub(crate) clock: GlobalClock,
    pub(crate) seqlock: SeqLock,
    pub(crate) serial: SerialLock,
    pub(crate) hourglass: Hourglass,
    pub(crate) stats: TmStats,
    next_tx_id: AtomicU64,
}

/// A transactional memory runtime in the image of GCC's libitm.
///
/// Cheap to clone (the clone shares all state). Transactions of different
/// runtimes are invisible to each other — like processes linked against
/// separate TM libraries — so a program should funnel all accesses to a
/// given set of [`crate::TCell`]s through one runtime.
///
/// # Examples
///
/// ```
/// use tm::{Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction};
///
/// // The configuration the paper calls "GCC-NoCM" (§4, Figure 11):
/// let rt = TmRuntime::builder()
///     .algorithm(Algorithm::Eager)
///     .contention_manager(ContentionManager::None)
///     .serial_lock(SerialLockMode::None)
///     .build();
/// let c = TCell::new(1u64);
/// rt.atomic(|tx| tx.fetch_add(&c, 41));
/// assert_eq!(c.load_direct(), 42);
/// ```
#[derive(Clone)]
pub struct TmRuntime {
    inner: Arc<RtInner>,
}

impl std::fmt::Debug for TmRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TmRuntime")
            .field("algorithm", &self.inner.algorithm)
            .field("cm", &self.inner.cm)
            .field("serial_mode", &self.inner.serial_mode)
            .finish()
    }
}

/// Configures and builds a [`TmRuntime`].
#[derive(Clone, Debug)]
pub struct TmRuntimeBuilder {
    algorithm: Algorithm,
    cm: ContentionManager,
    serial_mode: SerialLockMode,
    orec_log_size: u32,
}

impl Default for TmRuntimeBuilder {
    fn default() -> Self {
        TmRuntimeBuilder {
            algorithm: Algorithm::Eager,
            cm: ContentionManager::GCC_DEFAULT,
            serial_mode: SerialLockMode::ReaderWriter,
            orec_log_size: OrecTable::DEFAULT_LOG_SIZE,
        }
    }
}

impl TmRuntimeBuilder {
    /// Selects the STM algorithm (default: [`Algorithm::Eager`], GCC's).
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Selects the contention manager (default: serialize after 100
    /// consecutive aborts, GCC's policy).
    pub fn contention_manager(mut self, cm: ContentionManager) -> Self {
        self.cm = cm;
        self
    }

    /// Keeps or removes the global readers/writer serial lock (default:
    /// kept, GCC's configuration; [`SerialLockMode::None`] reproduces the
    /// paper's "NoLock" runtime).
    pub fn serial_lock(mut self, m: SerialLockMode) -> Self {
        self.serial_mode = m;
        self
    }

    /// Sets log2 of the ownership-record table size.
    ///
    /// # Panics
    ///
    /// `build` panics if the value is outside `1..=28`.
    pub fn orec_log_size(mut self, log: u32) -> Self {
        self.orec_log_size = log;
        self
    }

    /// Builds the runtime.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration: a serializing contention
    /// manager ([`ContentionManager::SerializeAfter`]) cannot be combined
    /// with [`SerialLockMode::None`].
    pub fn build(self) -> TmRuntime {
        if matches!(self.cm, ContentionManager::SerializeAfter(_))
            && self.serial_mode == SerialLockMode::None
        {
            panic!(
                "ContentionManager::SerializeAfter requires the serial lock; \
                 use ContentionManager::None / Backoff / Hourglass with \
                 SerialLockMode::None"
            );
        }
        TmRuntime {
            inner: Arc::new(RtInner {
                algorithm: self.algorithm,
                cm: self.cm,
                serial_mode: self.serial_mode,
                orecs: OrecTable::new(self.orec_log_size),
                clock: GlobalClock::new(),
                seqlock: SeqLock::new(),
                serial: SerialLock::new(),
                hourglass: Hourglass::new(),
                stats: TmStats::default(),
                next_tx_id: AtomicU64::new(1),
            }),
        }
    }
}

impl Default for TmRuntime {
    fn default() -> Self {
        TmRuntimeBuilder::default().build()
    }
}

/// Outcome of one attempt, for the retry loop.
enum AttemptOutcome<R> {
    Committed(R),
    Aborted,
    Cancelled,
}

impl TmRuntime {
    /// Starts configuring a runtime.
    pub fn builder() -> TmRuntimeBuilder {
        TmRuntimeBuilder::default()
    }

    /// The GCC-default configuration: eager algorithm, serialize-after-100
    /// contention policy, readers/writer serial lock.
    pub fn default_runtime() -> Self {
        TmRuntime::default()
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.inner.algorithm
    }

    /// The configured contention manager.
    pub fn contention_manager(&self) -> ContentionManager {
        self.inner.cm
    }

    /// The configured serial-lock mode.
    pub fn serial_lock_mode(&self) -> SerialLockMode {
        self.inner.serial_mode
    }

    /// A snapshot of the runtime's statistics counters (the raw material of
    /// the paper's Tables 1–4).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Runs `f` as a `__transaction_atomic` block, retrying on conflict
    /// until it commits, and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if `f` cancels (use [`TmRuntime::try_atomic`] for
    /// cancellable transactions).
    pub fn atomic<'env, R, F>(&'env self, f: F) -> R
    where
        F: FnMut(&mut AtomicTx<'env>) -> Result<R, Abort>,
    {
        match self.try_atomic(f) {
            Ok(r) => r,
            Err(Cancelled) => {
                panic!("transaction cancelled inside TmRuntime::atomic; use try_atomic")
            }
        }
    }

    /// Runs `f` as a cancellable `__transaction_atomic` block.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if `f` returned [`crate::cancel`]; all the
    /// transaction's effects have been rolled back.
    pub fn try_atomic<'env, R, F>(&'env self, mut f: F) -> Result<R, Cancelled>
    where
        F: FnMut(&mut AtomicTx<'env>) -> Result<R, Abort>,
    {
        self.run_loop(RelaxedPlan::new(), move |inner| {
            let mut tx = AtomicTx(inner);
            let r = f(&mut tx);
            (tx.0, r)
        })
    }

    /// A *transaction expression* (Draft C++ TM Specification §2): reads
    /// one cell in its own atomic transaction. The paper used these to
    /// replace `volatile` reads without changing line counts (§3.3), and
    /// notes that "GCC currently does not optimize single-location
    /// transactions" — neither does this runtime, so the cost is a full
    /// begin/commit (measurable with the `stm_primitives` bench).
    ///
    /// The result carries at least the ordering guarantees of a
    /// `memory_order_seq_cst` atomic load, as the specification requires.
    pub fn expr_read<T: crate::Word>(&self, cell: &TCell<T>) -> T {
        self.atomic(|tx| tx.read(cell))
    }

    /// A transaction expression that writes one cell; see
    /// [`TmRuntime::expr_read`].
    pub fn expr_write<T: crate::Word>(&self, cell: &TCell<T>, v: T) {
        self.atomic(|tx| tx.write(cell, v));
    }

    /// A transaction expression for a single read-modify-write (the shape
    /// the paper gave memcached's reference counts in §3.3).
    pub fn expr_modify<T: crate::Word>(&self, cell: &TCell<T>, f: impl Fn(T) -> T) -> T {
        self.atomic(|tx| tx.modify(cell, &f))
    }

    /// Runs `f` as a `__transaction_relaxed` block. `plan` records whether
    /// the transaction must begin serially (every path unsafe / callees
    /// not annotated).
    ///
    /// # Panics
    ///
    /// Panics if `f` cancels: the Draft C++ TM Specification forbids
    /// relaxed transactions from cancelling (they may be irrevocable).
    pub fn relaxed<'env, R, F>(&'env self, plan: RelaxedPlan, mut f: F) -> R
    where
        F: FnMut(&mut RelaxedTx<'env>) -> Result<R, Abort>,
    {
        let res = self.run_loop(plan, move |inner| {
            let mut tx = RelaxedTx(inner);
            let r = f(&mut tx);
            (tx.0, r)
        });
        match res {
            Ok(r) => r,
            Err(Cancelled) => panic!(
                "relaxed transactions cannot cancel (Draft C++ TM Specification)"
            ),
        }
    }

    /// The retry loop shared by atomic and relaxed transactions. `body`
    /// consumes a fresh `TxInner` per attempt and returns it with the
    /// closure's verdict.
    fn run_loop<'env, R, B>(&'env self, plan: RelaxedPlan, mut body: B) -> Result<R, Cancelled>
    where
        B: FnMut(TxInner<'env>) -> (TxInner<'env>, Result<R, Abort>),
    {
        let rt: &'env RtInner = &self.inner;
        let id = rt.next_tx_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut consecutive_aborts: u32 = 0;
        // This thread's log arena: cleared — not freed — between attempts,
        // and returned to the thread-local cache at the end, so retries and
        // successive transactions on one thread reuse all log storage (and
        // the handler vectors' backing allocation, lifetime-erased while
        // empty).
        let mut arena = Arena::take();
        let (mut commit_handlers, mut abort_handlers) = arena.take_handler_vecs();
        loop {
            if let ContentionManager::Hourglass(_) = rt.cm {
                rt.hourglass.wait_at_begin(id);
            }
            let inner = self.begin_attempt(
                rt,
                id,
                plan,
                consecutive_aborts,
                arena,
                commit_handlers,
                abort_handlers,
            );
            let (mut inner, verdict) = body(inner);
            let outcome = match verdict {
                Ok(r) => match self.finish_commit(&mut inner) {
                    Ok(()) => AttemptOutcome::Committed(r),
                    Err(_) => AttemptOutcome::Aborted,
                },
                Err(Abort::Conflict) => {
                    self.finish_abort(&mut inner);
                    AttemptOutcome::Aborted
                }
                Err(Abort::Cancelled) => {
                    self.finish_cancel(&mut inner);
                    AttemptOutcome::Cancelled
                }
            };
            // Recover the reusable storage from the finished attempt (the
            // handler vectors were drained in place, keeping capacity).
            commit_handlers = std::mem::take(&mut inner.commit_handlers);
            abort_handlers = std::mem::take(&mut inner.abort_handlers);
            arena = inner.arena;
            match outcome {
                AttemptOutcome::Committed(r) => {
                    rt.hourglass.open_if_held(id);
                    arena.release(commit_handlers, abort_handlers);
                    return Ok(r);
                }
                AttemptOutcome::Cancelled => {
                    rt.hourglass.open_if_held(id);
                    arena.release(commit_handlers, abort_handlers);
                    return Err(Cancelled);
                }
                AttemptOutcome::Aborted => {
                    consecutive_aborts += 1;
                    match rt.cm {
                        ContentionManager::Backoff { max_shift } => {
                            exponential_backoff(consecutive_aborts, max_shift, id);
                        }
                        ContentionManager::Hourglass(limit) => {
                            if consecutive_aborts >= limit {
                                rt.hourglass.try_close(id);
                            }
                        }
                        ContentionManager::None | ContentionManager::SerializeAfter(_) => {}
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn begin_attempt<'env>(
        &'env self,
        rt: &'env RtInner,
        id: u64,
        plan: RelaxedPlan,
        consecutive_aborts: u32,
        arena: Box<Arena>,
        commit_handlers: Vec<Box<dyn FnOnce() + 'env>>,
        abort_handlers: Vec<Box<dyn FnOnce() + 'env>>,
    ) -> TxInner<'env> {
        debug_assert!(arena.logs.writes.is_empty() && arena.logs.reads.is_empty());
        rt.stats.bump(&rt.stats.begins);
        let serialize_by_cm = matches!(rt.cm, ContentionManager::SerializeAfter(n) if consecutive_aborts >= n);
        let serialize = plan.start_serial || serialize_by_cm;
        if serialize {
            match rt.serial_mode {
                SerialLockMode::ReaderWriter => {}
                SerialLockMode::None => panic!(
                    "a transaction must begin serially but the serial lock was \
                     removed (SerialLockMode::None)"
                ),
            }
            rt.serial.write_acquire();
            if plan.start_serial {
                rt.stats.bump(&rt.stats.start_serial);
            } else {
                rt.stats.bump(&rt.stats.abort_serial);
            }
            TxInner {
                rt,
                id,
                engine: Engine::Serial,
                arena,
                irrevocable: true,
                holds_read: false,
                holds_write: true,
                commit_handlers,
                abort_handlers,
            }
        } else {
            let holds_read = match rt.serial_mode {
                SerialLockMode::ReaderWriter => {
                    rt.serial.read_acquire();
                    true
                }
                SerialLockMode::None => false,
            };
            TxInner {
                rt,
                id,
                engine: Engine::begin(rt, id),
                arena,
                irrevocable: false,
                holds_read,
                holds_write: false,
                commit_handlers,
                abort_handlers,
            }
        }
    }

    /// Commits an attempt. On `Err` the attempt has been fully aborted.
    ///
    /// Handler vectors are drained in place (not `mem::take`n) so their
    /// backing storage survives into the next attempt / transaction.
    fn finish_commit(&self, inner: &mut TxInner<'_>) -> Result<(), Abort> {
        let rt = inner.rt;
        let read_only = inner.engine.is_read_only(&inner.arena.logs) && !inner.irrevocable;
        if let Err(e) = inner.engine.commit(rt, &mut inner.arena.logs) {
            // Engine rolled itself back; finish the bookkeeping.
            self.finish_abort(inner);
            return Err(e);
        }
        inner.release_serial();
        rt.stats.bump(&rt.stats.commits);
        if read_only {
            rt.stats.bump(&rt.stats.read_only_commits);
        }
        if inner.irrevocable {
            rt.stats.bump(&rt.stats.irrevocable_commits);
        }
        stats::tally_commit();
        rt.stats
            .add(&rt.stats.commit_handlers_run, inner.commit_handlers.len() as u64);
        inner.abort_handlers.clear();
        for h in inner.commit_handlers.drain(..) {
            h();
        }
        Ok(())
    }

    fn finish_abort(&self, inner: &mut TxInner<'_>) {
        let rt = inner.rt;
        inner.engine.rollback(rt, &mut inner.arena.logs);
        inner.release_serial();
        rt.stats.bump(&rt.stats.aborts);
        stats::tally_abort();
        rt.stats
            .add(&rt.stats.abort_handlers_run, inner.abort_handlers.len() as u64);
        inner.commit_handlers.clear();
        for h in inner.abort_handlers.drain(..) {
            h();
        }
    }

    fn finish_cancel(&self, inner: &mut TxInner<'_>) {
        let rt = inner.rt;
        inner.engine.rollback(rt, &mut inner.arena.logs);
        inner.release_serial();
        rt.stats.bump(&rt.stats.cancels);
        rt.stats
            .add(&rt.stats.abort_handlers_run, inner.abort_handlers.len() as u64);
        inner.commit_handlers.clear();
        for h in inner.abort_handlers.drain(..) {
            h();
        }
    }
}
