//! The [`TmRuntime`]: algorithm × contention manager × serial-lock mode.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::algo::{Algorithm, Engine};
use crate::arena::Arena;
use crate::clock::{ClockShardStats, SeqLock, ShardedClock, MAX_CLOCK_SHARDS};
use crate::cm::{exponential_backoff, ContentionManager, Hourglass};
use crate::cell::TCell;
use crate::error::{Abort, Cancelled, TxError};
use crate::fault::{self, FaultSite};
use crate::orec::OrecTable;
use crate::serial::{SerialLock, SerialLockMode};
use crate::stats::{self, LivenessSnapshot, StatsSnapshot, TmStats};
use crate::txn::{AtomicTx, RelaxedPlan, RelaxedTx, Transaction, TxInner};

/// Bounds on a transaction's retry loop, for the `_with` entry points
/// ([`TmRuntime::atomic_with`], [`TmRuntime::relaxed_with`]).
///
/// The default is unbounded — identical to [`TmRuntime::atomic`] — which
/// mirrors GCC's libitm: a transaction retries until it commits. Bounds
/// turn pathological contention into a recoverable [`TxError`] instead of
/// an indefinite spin, the graceful-degradation path production OCC
/// systems rely on.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use tm::TxOptions;
///
/// let opts = TxOptions::new()
///     .max_retries(64)
///     .deadline(Duration::from_millis(50));
/// assert_eq!(opts.max_retries, Some(64));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxOptions {
    /// Retry budget: the first attempt is free, then at most this many
    /// retries before [`TxError::RetryLimit`]. `None` = unbounded.
    pub max_retries: Option<u32>,
    /// Wall-clock budget measured from transaction entry; checked between
    /// attempts and inside contention-manager waits (the first attempt
    /// always runs). `None` = unbounded.
    pub deadline: Option<Duration>,
}

impl TxOptions {
    /// Unbounded options (retry forever, like [`TmRuntime::atomic`]).
    pub const fn new() -> Self {
        TxOptions {
            max_retries: None,
            deadline: None,
        }
    }

    /// Caps consecutive retries of one transaction.
    pub const fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = Some(retries);
        self
    }

    /// Caps the transaction's total wall-clock time.
    pub const fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// Shared state of one runtime. Engines and transactions hold `&RtInner`.
pub(crate) struct RtInner {
    /// Live algorithm, packed by [`Algorithm::encode`]. Atomic because
    /// [`TmRuntime::switch_config`] swaps it under the serial write lock;
    /// every attempt loads it once at begin, and no attempt can span a swap
    /// (switching requires [`SerialLockMode::ReaderWriter`], so every
    /// attempt holds the serial lock for its whole lifetime).
    algo_code: AtomicU8,
    /// Live contention manager, packed by [`ContentionManager::encode`].
    cm_code: AtomicU64,
    pub(crate) serial_mode: SerialLockMode,
    pub(crate) orecs: OrecTable,
    pub(crate) clock: ShardedClock,
    pub(crate) seqlock: SeqLock,
    pub(crate) serial: SerialLock,
    pub(crate) hourglass: Hourglass,
    pub(crate) stats: TmStats,
    next_tx_id: AtomicU64,
}

impl RtInner {
    /// The live algorithm (may change between attempts, never within one).
    #[inline]
    pub(crate) fn algorithm(&self) -> Algorithm {
        Algorithm::decode(self.algo_code.load(Ordering::Acquire))
    }

    /// The live contention manager.
    #[inline]
    pub(crate) fn cm(&self) -> ContentionManager {
        ContentionManager::decode(self.cm_code.load(Ordering::Acquire))
    }
}

/// A transactional memory runtime in the image of GCC's libitm.
///
/// Cheap to clone (the clone shares all state). Transactions of different
/// runtimes are invisible to each other — like processes linked against
/// separate TM libraries — so a program should funnel all accesses to a
/// given set of [`crate::TCell`]s through one runtime.
///
/// # Examples
///
/// ```
/// use tm::{Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction};
///
/// // The configuration the paper calls "GCC-NoCM" (§4, Figure 11):
/// let rt = TmRuntime::builder()
///     .algorithm(Algorithm::Eager)
///     .contention_manager(ContentionManager::None)
///     .serial_lock(SerialLockMode::None)
///     .build();
/// let c = TCell::new(1u64);
/// rt.atomic(|tx| tx.fetch_add(&c, 41));
/// assert_eq!(c.load_direct(), 42);
/// ```
#[derive(Clone)]
pub struct TmRuntime {
    inner: Arc<RtInner>,
}

impl std::fmt::Debug for TmRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TmRuntime")
            .field("algorithm", &self.inner.algorithm())
            .field("cm", &self.inner.cm())
            .field("serial_mode", &self.inner.serial_mode)
            .finish()
    }
}

/// Configures and builds a [`TmRuntime`].
#[derive(Clone, Debug)]
pub struct TmRuntimeBuilder {
    algorithm: Algorithm,
    cm: ContentionManager,
    serial_mode: SerialLockMode,
    orec_log_size: u32,
    clock_shards: usize,
}

impl TmRuntimeBuilder {
    /// Default commit-clock shard count.
    pub const DEFAULT_CLOCK_SHARDS: usize = 8;
}

impl Default for TmRuntimeBuilder {
    fn default() -> Self {
        TmRuntimeBuilder {
            algorithm: Algorithm::Eager,
            cm: ContentionManager::GCC_DEFAULT,
            serial_mode: SerialLockMode::ReaderWriter,
            orec_log_size: OrecTable::DEFAULT_LOG_SIZE,
            clock_shards: Self::DEFAULT_CLOCK_SHARDS,
        }
    }
}

impl TmRuntimeBuilder {
    /// Selects the STM algorithm (default: [`Algorithm::Eager`], GCC's).
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Selects the contention manager (default: serialize after 100
    /// consecutive aborts, GCC's policy).
    pub fn contention_manager(mut self, cm: ContentionManager) -> Self {
        self.cm = cm;
        self
    }

    /// Keeps or removes the global readers/writer serial lock (default:
    /// kept, GCC's configuration; [`SerialLockMode::None`] reproduces the
    /// paper's "NoLock" runtime).
    pub fn serial_lock(mut self, m: SerialLockMode) -> Self {
        self.serial_mode = m;
        self
    }

    /// Sets log2 of the ownership-record table size.
    ///
    /// # Panics
    ///
    /// `build` panics if the value is outside `3..=28`.
    pub fn orec_log_size(mut self, log: u32) -> Self {
        self.orec_log_size = log;
        self
    }

    /// Sets the commit-clock shard count (default 8). One shard reproduces
    /// the classic single-word global clock, timestamp for timestamp — the
    /// configuration `tablecheck` pins for the paper's tables. More shards
    /// spread commit CASes over that many cache lines with thread→shard
    /// affinity.
    ///
    /// # Panics
    ///
    /// `build` panics unless the value is a power of two in `1..=64`.
    pub fn clock_shards(mut self, n: usize) -> Self {
        self.clock_shards = n;
        self
    }

    /// Builds the runtime.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration: a serializing contention
    /// manager ([`ContentionManager::SerializeAfter`]) cannot be combined
    /// with [`SerialLockMode::None`], and the clock shard count must be a
    /// power of two in `1..=64`.
    pub fn build(self) -> TmRuntime {
        if matches!(self.cm, ContentionManager::SerializeAfter(_))
            && self.serial_mode == SerialLockMode::None
        {
            panic!(
                "ContentionManager::SerializeAfter requires the serial lock; \
                 use ContentionManager::None / Backoff / Hourglass with \
                 SerialLockMode::None"
            );
        }
        assert!(
            self.clock_shards.is_power_of_two()
                && (1..=MAX_CLOCK_SHARDS).contains(&self.clock_shards),
            "clock shard count {} must be a power of two in 1..=64",
            self.clock_shards
        );
        TmRuntime {
            inner: Arc::new(RtInner {
                algo_code: AtomicU8::new(self.algorithm.encode()),
                cm_code: AtomicU64::new(self.cm.encode()),
                serial_mode: self.serial_mode,
                orecs: OrecTable::new(self.orec_log_size),
                clock: ShardedClock::new(self.clock_shards),
                seqlock: SeqLock::new(),
                serial: SerialLock::new(),
                hourglass: Hourglass::new(),
                stats: TmStats::default(),
                next_tx_id: AtomicU64::new(1),
            }),
        }
    }
}

impl Default for TmRuntime {
    fn default() -> Self {
        TmRuntimeBuilder::default().build()
    }
}

/// Why [`TmRuntime::switch_config`] refused to swap the configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchError {
    /// The runtime was built with [`SerialLockMode::None`]: the serial
    /// lock is the quiesce point a safe swap requires, so a NoLock
    /// runtime's configuration is permanently static.
    NoSerialLock,
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::NoSerialLock => {
                write!(f, "cannot switch configuration: runtime has no serial lock")
            }
        }
    }
}

impl std::error::Error for SwitchError {}

/// Outcome of one attempt, for the retry loop.
enum AttemptOutcome<R> {
    Committed(R),
    Aborted,
    Cancelled,
}

impl TmRuntime {
    /// Starts configuring a runtime.
    pub fn builder() -> TmRuntimeBuilder {
        TmRuntimeBuilder::default()
    }

    /// The GCC-default configuration: eager algorithm, serialize-after-100
    /// contention policy, readers/writer serial lock.
    pub fn default_runtime() -> Self {
        TmRuntime::default()
    }

    /// The *live* algorithm: the one the next transaction attempt begins
    /// under. Changes only via [`TmRuntime::switch_config`].
    pub fn algorithm(&self) -> Algorithm {
        self.inner.algorithm()
    }

    /// The *live* contention manager. Changes only via
    /// [`TmRuntime::switch_config`].
    pub fn contention_manager(&self) -> ContentionManager {
        self.inner.cm()
    }

    /// Swaps the live algorithm and contention manager with a full
    /// quiesce: the serial lock is acquired exclusively (draining every
    /// in-flight transaction), the two global time bases are aligned so
    /// commit stamps stay monotone across the switch, and the new
    /// configuration is published before any transaction may begin again.
    ///
    /// Safety argument (DESIGN.md §15): no transaction ever spans the
    /// swap — switching requires [`SerialLockMode::ReaderWriter`], under
    /// which every attempt holds the serial lock shared from begin to
    /// commit/abort, so the exclusive acquisition here is a barrier. At
    /// the quiesce point all orecs are unlocked and the sequence lock is
    /// even. Orec versions published by pre-switch commits are at most the
    /// aligned time value, and every post-switch snapshot starts at or
    /// above it, so stale-low versions can never admit a torn read; NOrec
    /// value-based validation is insensitive to orec state entirely.
    ///
    /// Returns `Ok(true)` if the configuration changed, `Ok(false)` if it
    /// already matched (no quiesce performed).
    ///
    /// # Errors
    ///
    /// [`SwitchError::NoSerialLock`] if the runtime was built with
    /// [`SerialLockMode::None`]: without the serial lock there is no
    /// quiesce point, so the configuration is permanently static.
    pub fn switch_config(
        &self,
        algorithm: Algorithm,
        cm: ContentionManager,
    ) -> Result<bool, SwitchError> {
        let rt = &*self.inner;
        if rt.serial_mode == SerialLockMode::None {
            return Err(SwitchError::NoSerialLock);
        }
        if rt.algorithm() == algorithm && rt.cm() == cm {
            return Ok(false);
        }
        rt.serial.write_acquire();
        // Re-check under the lock: a concurrent switcher may have won.
        let changed = rt.algorithm() != algorithm || rt.cm() != cm;
        if changed {
            if rt.algorithm() != algorithm {
                // Align both time bases to their joint maximum so every
                // commit stamp minted after the switch exceeds every stamp
                // published before it — consumers ordering externalized
                // effects by stamp (the durability log, hot-set
                // publication) never see time run backwards.
                let t = rt.clock.now().max(rt.seqlock.load());
                rt.clock.raise_to(t);
                rt.seqlock.raise_to(t);
            }
            rt.algo_code.store(algorithm.encode(), Ordering::Release);
            rt.cm_code.store(cm.encode(), Ordering::Release);
            rt.stats.bump(&rt.stats.config_switches);
        }
        rt.serial.write_release();
        Ok(changed)
    }

    /// The configured serial-lock mode.
    pub fn serial_lock_mode(&self) -> SerialLockMode {
        self.inner.serial_mode
    }

    /// A snapshot of the runtime's statistics counters (the raw material of
    /// the paper's Tables 1–4).
    pub fn stats(&self) -> StatsSnapshot {
        let mut s = self.inner.stats.snapshot();
        // Conflicts tally per orec stripe (off the transaction hot path);
        // fold the table's total into the snapshot here.
        s.orec_stripe_conflicts = self.inner.orecs.conflict_total();
        s
    }

    /// Per-shard commit-clock counters: current timestamp, ticks issued,
    /// same-shard CAS retries, and cross-shard syncs, indexed by shard.
    pub fn clock_shard_stats(&self) -> Vec<ClockShardStats> {
        self.inner.clock.shard_stats()
    }

    /// The number of commit-clock shards this runtime was built with.
    pub fn clock_shards(&self) -> usize {
        self.inner.clock.shards()
    }

    /// The calling thread's commit-clock shard affinity under this
    /// runtime: commits from this thread CAS only that shard's line.
    pub fn current_thread_shard(&self) -> usize {
        self.inner.clock.my_shard()
    }

    /// Per-stripe orec conflict tallies (locked-by-other and version
    /// mismatches observed against each orec cache line).
    pub fn orec_stripe_conflicts(&self) -> Vec<u64> {
        self.inner.orecs.stripe_conflicts()
    }

    /// The number of orec cache-line stripes in this runtime's table.
    pub fn orec_stripe_count(&self) -> usize {
        self.inner.orecs.stripe_count()
    }

    /// Reads the runtime's current time base *without* advancing it: the
    /// largest commit stamp that could have been published so far. Any
    /// writer that commits after this call returns mints a strictly larger
    /// stamp (clock ticks are strictly increasing; a NOrec commit
    /// publishes at least `+2` over the even value read here).
    ///
    /// Intended for labeling *observations*: a reader that validated its
    /// snapshot at or after this call can publish what it read tagged with
    /// this stamp, and a max-stamp-wins consumer will never let that
    /// observation overwrite a later write's publication.
    pub fn observation_stamp(&self) -> u64 {
        let rt = &*self.inner;
        match rt.algorithm() {
            Algorithm::Eager | Algorithm::Lazy => rt.clock.now(),
            Algorithm::Norec => rt.seqlock.wait_even(),
        }
    }

    /// Mints a commit stamp from the runtime's time base for an effect
    /// published *outside* a transaction (e.g. a direct update performed
    /// under an external lock). The stamp shares the space used by
    /// transactional commit stamps ([`last_commit_stamp`]): it is at
    /// least as large as every stamp already published, and every
    /// transactional writer that starts (or commits) after this call
    /// returns mints a larger or equal stamp — equal only for norec,
    /// where callers must break ties by append order.
    pub fn mint_commit_stamp(&self) -> u64 {
        let rt = &*self.inner;
        match rt.algorithm() {
            // Advancing the clock (rather than just reading it) keeps the
            // invariant that a later `commit_tick` strictly exceeds this
            // stamp.
            Algorithm::Eager | Algorithm::Lazy => rt.clock.tick(),
            // No committer bump: the caller serializes same-data effects
            // externally (its lock), and any transactional commit that
            // begins after this read bumps to at least this value + 2.
            Algorithm::Norec => rt.seqlock.wait_even(),
        }
    }

    /// Runs `f` as a `__transaction_atomic` block, retrying on conflict
    /// until it commits, and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if `f` cancels (use [`TmRuntime::try_atomic`] for
    /// cancellable transactions).
    pub fn atomic<'env, R, F>(&'env self, f: F) -> R
    where
        F: FnMut(&mut AtomicTx<'env>) -> Result<R, Abort>,
    {
        match self.try_atomic(f) {
            Ok(r) => r,
            Err(Cancelled) => {
                panic!("transaction cancelled inside TmRuntime::atomic; use try_atomic")
            }
        }
    }

    /// Runs `f` as a cancellable `__transaction_atomic` block.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if `f` returned [`crate::cancel`]; all the
    /// transaction's effects have been rolled back.
    pub fn try_atomic<'env, R, F>(&'env self, mut f: F) -> Result<R, Cancelled>
    where
        F: FnMut(&mut AtomicTx<'env>) -> Result<R, Abort>,
    {
        let res = self.run_loop(RelaxedPlan::new(), TxOptions::new(), false, move |inner| {
            f(AtomicTx::wrap_mut(inner))
        });
        match res {
            Ok(r) => Ok(r),
            Err(TxError::Cancelled) => Err(Cancelled),
            // INVARIANT: unbounded TxOptions can never produce a
            // retry-limit or timeout error.
            Err(e) => unreachable!("unbounded transaction returned {e:?}"),
        }
    }

    /// Runs `f` as a `__transaction_atomic` block *expected* to be
    /// read-only: the attempt takes the read-only fast lane — no orec is
    /// acquired, no undo/redo log entry is written, validation prefers
    /// timestamp-snapshot extension, and commit is a single fence (the
    /// engines' read-only commit path) counted in
    /// [`crate::StatsSnapshot::ro_fast_commits`].
    ///
    /// The hint is *safe*: if `f` writes after all, the attempt silently
    /// promotes to a full read-write transaction at the first write
    /// (counted in [`crate::StatsSnapshot::ro_promotions`]) and commits
    /// with identical semantics to [`TmRuntime::atomic`].
    ///
    /// # Panics
    ///
    /// Panics if `f` cancels (use [`TmRuntime::try_atomic_ro`]).
    pub fn atomic_ro<'env, R, F>(&'env self, f: F) -> R
    where
        F: FnMut(&mut AtomicTx<'env>) -> Result<R, Abort>,
    {
        match self.try_atomic_ro(f) {
            Ok(r) => r,
            Err(Cancelled) => {
                panic!("transaction cancelled inside TmRuntime::atomic_ro; use try_atomic_ro")
            }
        }
    }

    /// Cancellable variant of [`TmRuntime::atomic_ro`].
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if `f` returned [`crate::cancel`]; all the
    /// transaction's effects have been rolled back.
    pub fn try_atomic_ro<'env, R, F>(&'env self, mut f: F) -> Result<R, Cancelled>
    where
        F: FnMut(&mut AtomicTx<'env>) -> Result<R, Abort>,
    {
        let res = self.run_loop(RelaxedPlan::new(), TxOptions::new(), true, move |inner| {
            f(AtomicTx::wrap_mut(inner))
        });
        match res {
            Ok(r) => Ok(r),
            Err(TxError::Cancelled) => Err(Cancelled),
            // INVARIANT: unbounded TxOptions can never produce a
            // retry-limit or timeout error.
            Err(e) => unreachable!("unbounded transaction returned {e:?}"),
        }
    }

    /// Runs `f` as a *bounded* `__transaction_atomic` block: like
    /// [`TmRuntime::atomic`], but `opts` can cap retries and impose a
    /// wall-clock deadline so pathological contention degrades into a
    /// recoverable [`TxError`] instead of spinning forever.
    ///
    /// # Errors
    ///
    /// [`TxError::Cancelled`] if `f` cancelled, [`TxError::RetryLimit`] /
    /// [`TxError::Timeout`] when the corresponding bound was exceeded. In
    /// every error case the transaction's effects are fully rolled back
    /// and all runtime locks released.
    pub fn atomic_with<'env, R, F>(&'env self, opts: TxOptions, mut f: F) -> Result<R, TxError>
    where
        F: FnMut(&mut AtomicTx<'env>) -> Result<R, Abort>,
    {
        self.run_loop(RelaxedPlan::new(), opts, false, move |inner| {
            f(AtomicTx::wrap_mut(inner))
        })
    }

    /// A *transaction expression* (Draft C++ TM Specification §2): reads
    /// one cell in its own atomic transaction. The paper used these to
    /// replace `volatile` reads without changing line counts (§3.3), and
    /// notes that "GCC currently does not optimize single-location
    /// transactions" — neither does this runtime, so the cost is a full
    /// begin/commit (measurable with the `stm_primitives` bench).
    ///
    /// The result carries at least the ordering guarantees of a
    /// `memory_order_seq_cst` atomic load, as the specification requires.
    pub fn expr_read<T: crate::Word>(&self, cell: &TCell<T>) -> T {
        self.atomic(|tx| tx.read(cell))
    }

    /// A transaction expression that writes one cell; see
    /// [`TmRuntime::expr_read`].
    pub fn expr_write<T: crate::Word>(&self, cell: &TCell<T>, v: T) {
        self.atomic(|tx| tx.write(cell, v));
    }

    /// A transaction expression for a single read-modify-write (the shape
    /// the paper gave memcached's reference counts in §3.3).
    pub fn expr_modify<T: crate::Word>(&self, cell: &TCell<T>, f: impl Fn(T) -> T) -> T {
        self.atomic(|tx| tx.modify(cell, &f))
    }

    /// Runs `f` as a `__transaction_relaxed` block. `plan` records whether
    /// the transaction must begin serially (every path unsafe / callees
    /// not annotated).
    ///
    /// # Panics
    ///
    /// Panics if `f` cancels: the Draft C++ TM Specification forbids
    /// relaxed transactions from cancelling (they may be irrevocable).
    pub fn relaxed<'env, R, F>(&'env self, plan: RelaxedPlan, mut f: F) -> R
    where
        F: FnMut(&mut RelaxedTx<'env>) -> Result<R, Abort>,
    {
        let res = self.run_loop(plan, TxOptions::new(), false, move |inner| {
            f(RelaxedTx::wrap_mut(inner))
        });
        match res {
            Ok(r) => r,
            Err(TxError::Cancelled) => panic!(
                "relaxed transactions cannot cancel (Draft C++ TM Specification)"
            ),
            // INVARIANT: unbounded TxOptions can never produce a
            // retry-limit or timeout error.
            Err(e) => unreachable!("unbounded transaction returned {e:?}"),
        }
    }

    /// Runs `f` as a `__transaction_relaxed` block expected to be
    /// read-only; see [`TmRuntime::atomic_ro`] for the fast-lane and
    /// promotion semantics. A write promotes to a full transaction; an
    /// unsafe operation ([`RelaxedTx::unsafe_op`]) leaves the lane via the
    /// usual in-flight switch. A `plan` with `start_serial` set ignores
    /// the hint entirely — a serial attempt is never in the fast lane.
    ///
    /// # Panics
    ///
    /// Panics if `f` cancels: the Draft C++ TM Specification forbids
    /// relaxed transactions from cancelling (they may be irrevocable).
    pub fn relaxed_ro<'env, R, F>(&'env self, plan: RelaxedPlan, mut f: F) -> R
    where
        F: FnMut(&mut RelaxedTx<'env>) -> Result<R, Abort>,
    {
        let res = self.run_loop(plan, TxOptions::new(), true, move |inner| {
            f(RelaxedTx::wrap_mut(inner))
        });
        match res {
            Ok(r) => r,
            Err(TxError::Cancelled) => panic!(
                "relaxed transactions cannot cancel (Draft C++ TM Specification)"
            ),
            // INVARIANT: unbounded TxOptions can never produce a
            // retry-limit or timeout error.
            Err(e) => unreachable!("unbounded transaction returned {e:?}"),
        }
    }

    /// Runs `f` as a *bounded* `__transaction_relaxed` block; see
    /// [`TmRuntime::atomic_with`] for the bound semantics.
    ///
    /// # Errors
    ///
    /// [`TxError::RetryLimit`] / [`TxError::Timeout`] when the
    /// corresponding [`TxOptions`] bound was exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `f` cancels: the Draft C++ TM Specification forbids
    /// relaxed transactions from cancelling (they may be irrevocable).
    pub fn relaxed_with<'env, R, F>(
        &'env self,
        plan: RelaxedPlan,
        opts: TxOptions,
        mut f: F,
    ) -> Result<R, TxError>
    where
        F: FnMut(&mut RelaxedTx<'env>) -> Result<R, Abort>,
    {
        let res = self.run_loop(plan, opts, false, move |inner| f(RelaxedTx::wrap_mut(inner)));
        match res {
            Err(TxError::Cancelled) => panic!(
                "relaxed transactions cannot cancel (Draft C++ TM Specification)"
            ),
            other => other,
        }
    }

    /// A cheap progress probe for an external watchdog: pair two of these
    /// some interval apart and use [`LivenessSnapshot::stalled_since`] /
    /// [`LivenessSnapshot::abort_storm_since`] to detect a livelocked or
    /// storming runtime. Costs a handful of relaxed atomic loads.
    pub fn liveness(&self) -> LivenessSnapshot {
        let rt = &*self.inner;
        LivenessSnapshot {
            commits: rt.stats.commits.load(Ordering::Relaxed),
            aborts: rt.stats.aborts.load(Ordering::Relaxed),
            panic_aborts: rt.stats.panic_aborts.load(Ordering::Relaxed),
            clock: rt.clock.now(),
            seq: rt.seqlock.load(),
            hourglass_holder: rt.hourglass.holder(),
            serial_writer_pending: rt.serial.writer_pending(),
        }
    }

    /// The retry loop shared by all entry points. `run_loop` owns the
    /// `TxInner` and lends it to `body` each attempt (the entry points
    /// reinterpret the `&mut TxInner` as the `repr(transparent)` facade
    /// types), so that when a panic unwinds out of `body` or the engine's
    /// commit path, the loop still holds the transaction state and can
    /// tear it down — replay undo, release orecs and the serial lock,
    /// reopen the hourglass — before resuming the unwind.
    fn run_loop<'env, R, B>(
        &'env self,
        plan: RelaxedPlan,
        opts: TxOptions,
        ro: bool,
        mut body: B,
    ) -> Result<R, TxError>
    where
        B: FnMut(&mut TxInner<'env>) -> Result<R, Abort>,
    {
        let rt: &'env RtInner = &self.inner;
        let id = rt.next_tx_id.fetch_add(1, Ordering::Relaxed) + 1;
        let deadline = opts.deadline.map(|d| Instant::now() + d);
        let mut consecutive_aborts: u32 = 0;
        // This thread's log arena: cleared — not freed — between attempts,
        // and returned to the thread-local cache at the end, so retries and
        // successive transactions on one thread reuse all log storage (and
        // the handler vectors' backing allocation, lifetime-erased while
        // empty).
        let mut arena = Arena::take();
        let (mut commit_handlers, mut abort_handlers) = arena.take_handler_vecs();
        loop {
            if let ContentionManager::Hourglass(_) = rt.cm() {
                if !rt.hourglass.wait_at_begin_until(id, deadline) {
                    rt.stats.bump(&rt.stats.timeouts);
                    arena.release(commit_handlers, abort_handlers);
                    return Err(TxError::Timeout);
                }
            }
            let mut inner = self.begin_attempt(
                rt,
                id,
                plan,
                ro,
                consecutive_aborts,
                arena,
                commit_handlers,
                abort_handlers,
            );
            // Body and commit point run under one catch_unwind: a panic
            // anywhere before the commit point completes — user code, an
            // engine read/write, commit-time validation, an injected fault
            // — is recoverable because nothing has been published yet.
            let attempt: Result<AttemptOutcome<R>, Box<dyn Any + Send>> =
                catch_unwind(AssertUnwindSafe(|| match body(&mut inner) {
                    Ok(r) => match self.commit_point(&mut inner) {
                        Ok(()) => AttemptOutcome::Committed(r),
                        Err(_) => AttemptOutcome::Aborted,
                    },
                    Err(Abort::Conflict) => {
                        self.abort_point(&mut inner);
                        AttemptOutcome::Aborted
                    }
                    Err(Abort::Cancelled) => {
                        self.cancel_point(&mut inner);
                        AttemptOutcome::Cancelled
                    }
                }));
            let outcome = match attempt {
                Ok(o) => o,
                Err(payload) => {
                    // Panic unwinding out of the attempt: replay the undo
                    // log / drop buffered writes, release every orec and
                    // the serial lock, run onAbort handlers, reopen the
                    // hourglass, then resume the unwind with the runtime
                    // fully usable by other threads.
                    self.panic_point(&mut inner);
                    let _ = self.run_abort_handlers(&mut inner);
                    rt.hourglass.open_if_held(id);
                    let ch = std::mem::take(&mut inner.commit_handlers);
                    let ah = std::mem::take(&mut inner.abort_handlers);
                    inner.arena.release(ch, ah);
                    resume_unwind(payload);
                }
            };
            // Handlers run outside the attempt's catch_unwind: by now the
            // outcome is sealed, so a panicking onCommit handler must not
            // (and cannot) roll back committed data. Each handler is
            // caught individually; the first payload is re-thrown below
            // after cleanup.
            let handler_panic = match &outcome {
                AttemptOutcome::Committed(_) => self.run_commit_handlers(&mut inner),
                AttemptOutcome::Aborted | AttemptOutcome::Cancelled => {
                    self.run_abort_handlers(&mut inner)
                }
            };
            // Recover the reusable storage from the finished attempt (the
            // handler vectors were drained in place, keeping capacity).
            commit_handlers = std::mem::take(&mut inner.commit_handlers);
            abort_handlers = std::mem::take(&mut inner.abort_handlers);
            arena = inner.arena;
            if let Some(payload) = handler_panic {
                rt.hourglass.open_if_held(id);
                arena.release(commit_handlers, abort_handlers);
                resume_unwind(payload);
            }
            match outcome {
                AttemptOutcome::Committed(r) => {
                    rt.hourglass.open_if_held(id);
                    arena.release(commit_handlers, abort_handlers);
                    return Ok(r);
                }
                AttemptOutcome::Cancelled => {
                    rt.hourglass.open_if_held(id);
                    arena.release(commit_handlers, abort_handlers);
                    return Err(TxError::Cancelled);
                }
                AttemptOutcome::Aborted => {
                    consecutive_aborts += 1;
                    if let Some(max) = opts.max_retries {
                        if consecutive_aborts > max {
                            rt.stats.bump(&rt.stats.retry_limits);
                            rt.hourglass.open_if_held(id);
                            arena.release(commit_handlers, abort_handlers);
                            return Err(TxError::RetryLimit { retries: max });
                        }
                    }
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            rt.stats.bump(&rt.stats.timeouts);
                            rt.hourglass.open_if_held(id);
                            arena.release(commit_handlers, abort_handlers);
                            return Err(TxError::Timeout);
                        }
                    }
                    match rt.cm() {
                        ContentionManager::Backoff { max_shift } => {
                            exponential_backoff(consecutive_aborts, max_shift, id, deadline);
                        }
                        ContentionManager::Hourglass(limit) => {
                            if consecutive_aborts >= limit {
                                rt.hourglass.try_close(id);
                            }
                        }
                        ContentionManager::None | ContentionManager::SerializeAfter(_) => {}
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn begin_attempt<'env>(
        &'env self,
        rt: &'env RtInner,
        id: u64,
        plan: RelaxedPlan,
        ro: bool,
        consecutive_aborts: u32,
        arena: Box<Arena>,
        commit_handlers: Vec<Box<dyn FnOnce() + 'env>>,
        abort_handlers: Vec<Box<dyn FnOnce() + 'env>>,
    ) -> TxInner<'env> {
        debug_assert!(arena.logs.writes.is_empty() && arena.logs.reads.is_empty());
        rt.stats.bump(&rt.stats.begins);
        let serialize_by_cm =
            matches!(rt.cm(), ContentionManager::SerializeAfter(n) if consecutive_aborts >= n);
        let serialize = plan.start_serial || serialize_by_cm;
        if serialize {
            match rt.serial_mode {
                SerialLockMode::ReaderWriter => {}
                // INVARIANT: builder rejects SerializeAfter+None, and a
                // start-serial plan on a NoLock runtime is a branch-policy
                // configuration error, not a recoverable runtime state.
                SerialLockMode::None => panic!(
                    "a transaction must begin serially but the serial lock was \
                     removed (SerialLockMode::None)"
                ),
            }
            rt.serial.write_acquire();
            if plan.start_serial {
                rt.stats.bump(&rt.stats.start_serial);
            } else {
                rt.stats.bump(&rt.stats.abort_serial);
            }
            TxInner {
                rt,
                id,
                engine: Engine::Serial,
                arena,
                irrevocable: true,
                // A serial attempt runs uninstrumented; the RO hint is
                // meaningless there and must not suppress bookkeeping.
                ro: false,
                holds_read: false,
                holds_write: true,
                commit_handlers,
                abort_handlers,
            }
        } else {
            let holds_read = match rt.serial_mode {
                SerialLockMode::ReaderWriter => {
                    rt.serial.read_acquire();
                    true
                }
                SerialLockMode::None => false,
            };
            TxInner {
                rt,
                id,
                engine: Engine::begin(rt, id),
                arena,
                irrevocable: false,
                // Every retry re-enters the fast lane: a promotion is
                // per-attempt, and a fresh attempt has written nothing.
                ro,
                holds_read,
                holds_write: false,
                commit_handlers,
                abort_handlers,
            }
        }
    }

    /// The commit point: engine commit, serial-lock release, stats. On
    /// `Err` the attempt has been fully aborted (engine contract: a failed
    /// `commit` has already rolled back). Handlers run later, outside the
    /// attempt's `catch_unwind`.
    fn commit_point(&self, inner: &mut TxInner<'_>) -> Result<(), Abort> {
        let rt = inner.rt;
        let read_only = inner.engine.is_read_only(&inner.arena.logs) && !inner.irrevocable;
        let stamp = match inner.engine.commit(rt, &mut inner.arena.logs) {
            Ok(s) => s,
            Err(e) => {
                // Engine rolled itself back; finish the bookkeeping.
                self.abort_point(inner);
                return Err(e);
            }
        };
        // A serial-irrevocable attempt (started serial, or promoted by
        // `make_irrevocable`) has no engine stamp; mint one from the
        // runtime's time base while the serial lock is still held
        // exclusively, so the stamp orders after every earlier commit and
        // every later committer mints a larger (or tie-broken-later) one.
        // Minted only when an onCommit handler might consume it — ticking
        // the global clock on every serial commit would be pure overhead.
        let stamp = if matches!(inner.engine, Engine::Serial) && !inner.commit_handlers.is_empty()
        {
            match rt.algorithm() {
                Algorithm::Eager | Algorithm::Lazy => rt.clock.tick(),
                Algorithm::Norec => {
                    let s = rt.seqlock.wait_even();
                    // Cannot spin: no committer can hold the sequence lock
                    // while we hold the serial lock exclusively.
                    let bumped = rt.seqlock.try_begin_commit(s);
                    debug_assert!(bumped);
                    rt.seqlock.end_commit(s);
                    s + 2
                }
            }
        } else {
            stamp
        };
        LAST_COMMIT_STAMP.with(|c| c.set(stamp));
        inner.release_serial();
        rt.stats.bump(&rt.stats.commits);
        if read_only {
            rt.stats.bump(&rt.stats.read_only_commits);
            if inner.ro {
                // Fast lane held to the end: never acquired an orec, never
                // logged an undo/redo entry, committed on the engines'
                // single-fence read-only path.
                rt.stats.bump(&rt.stats.ro_fast_commits);
            }
        }
        if inner.irrevocable {
            rt.stats.bump(&rt.stats.irrevocable_commits);
        }
        flush_op_tallies(inner);
        stats::tally_commit();
        Ok(())
    }

    fn abort_point(&self, inner: &mut TxInner<'_>) {
        let rt = inner.rt;
        inner.engine.rollback(rt, &mut inner.arena.logs);
        inner.release_serial();
        rt.stats.bump(&rt.stats.aborts);
        flush_op_tallies(inner);
        stats::tally_abort();
    }

    fn cancel_point(&self, inner: &mut TxInner<'_>) {
        let rt = inner.rt;
        inner.engine.rollback(rt, &mut inner.arena.logs);
        inner.release_serial();
        rt.stats.bump(&rt.stats.cancels);
        flush_op_tallies(inner);
    }

    /// Tears down an attempt that a panic is unwinding out of: replay the
    /// undo log / drop buffered writes and release every orec (engine
    /// rollback), release the serial lock, count a `panic_abort`.
    ///
    /// For a serial-irrevocable attempt the engine rollback is a no-op —
    /// uninstrumented direct writes cannot be undone, exactly like a panic
    /// inside a lock-based critical section — but the serial lock is
    /// released so every other thread keeps running.
    fn panic_point(&self, inner: &mut TxInner<'_>) {
        let rt = inner.rt;
        inner.engine.rollback(rt, &mut inner.arena.logs);
        inner.release_serial();
        rt.stats.bump(&rt.stats.panic_aborts);
        flush_op_tallies(inner);
        stats::tally_abort();
    }

    /// Runs (drains) the `onCommit` handlers. Each handler is caught
    /// individually: a panicking handler is counted in `handler_panics`,
    /// the remaining handlers still run, and the *first* payload is
    /// returned for the caller to re-throw after cleanup — a handler panic
    /// never rolls back the already-committed transaction.
    ///
    /// Handler vectors are drained in place (not `mem::take`n) so their
    /// backing storage survives into the next attempt / transaction.
    fn run_commit_handlers(&self, inner: &mut TxInner<'_>) -> Option<Box<dyn Any + Send>> {
        let rt = inner.rt;
        rt.stats
            .add(&rt.stats.commit_handlers_run, inner.commit_handlers.len() as u64);
        inner.abort_handlers.clear();
        let mut first_panic = None;
        for h in inner.commit_handlers.drain(..) {
            run_handler(rt, h, &mut first_panic);
        }
        first_panic
    }

    /// Runs (drains) the `onAbort` handlers; same panic semantics as
    /// [`TmRuntime::run_commit_handlers`].
    fn run_abort_handlers(&self, inner: &mut TxInner<'_>) -> Option<Box<dyn Any + Send>> {
        let rt = inner.rt;
        rt.stats
            .add(&rt.stats.abort_handlers_run, inner.abort_handlers.len() as u64);
        inner.commit_handlers.clear();
        let mut first_panic = None;
        for h in inner.abort_handlers.drain(..) {
            run_handler(rt, h, &mut first_panic);
        }
        first_panic
    }
}

thread_local! {
    /// The commit stamp of this thread's most recent committed attempt,
    /// published by `commit_point` before the serial lock is released and
    /// before onCommit handlers run.
    static LAST_COMMIT_STAMP: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The commit stamp of the calling thread's most recently committed
/// transaction.
///
/// Intended for `on_commit` handlers: by the time a handler runs, the
/// stamp of the transaction that registered it is the thread's latest,
/// so a handler can label externalized effects (e.g. redo-log records)
/// with their position in the runtime's commit order. Stamps from
/// transactions with overlapping write sets are ordered consistently
/// with their real-time commit order; two *equal* stamps (possible for
/// read-only commits and norec) must be tie-broken by the caller.
///
/// Returns 0 if the thread has never committed.
pub fn last_commit_stamp() -> u64 {
    LAST_COMMIT_STAMP.with(|c| c.get())
}

/// Drains the attempt's per-operation tallies (read-log dedup hits,
/// snapshot extensions) into the shared counters. Accumulating in the
/// arena and flushing once per attempt keeps shared-atomic traffic off the
/// read hot path; the tallies survive the engine's `bufs.clear()` exactly
/// so this can run after commit/rollback.
fn flush_op_tallies(inner: &mut TxInner<'_>) {
    let rt = inner.rt;
    let t = inner.arena.logs.take_op_tallies();
    rt.stats.add(&rt.stats.read_log_dedup_hits, t.dedup_hits);
    rt.stats.add(&rt.stats.snapshot_extensions, t.extensions);
    rt.stats.add(&rt.stats.silent_store_elisions, t.silent_elisions);
    rt.stats.add(&rt.stats.clock_tick_elisions, t.clock_elisions);
    rt.stats.add(&rt.stats.clock_cas_retries, t.clock_retries);
    rt.stats.add(&rt.stats.clock_shard_syncs, t.shard_syncs);
    rt.stats.add(&rt.stats.seqlock_bump_elisions, t.seqlock_elisions);
}

fn run_handler<'e>(
    rt: &RtInner,
    h: Box<dyn FnOnce() + 'e>,
    first_panic: &mut Option<Box<dyn Any + Send>>,
) {
    let r = catch_unwind(AssertUnwindSafe(move || {
        // Spurious-abort draws are meaningless once the outcome is sealed;
        // only the delay/panic actions of the fault plan matter here.
        let _ = fault::inject(FaultSite::Handler);
        h();
    }));
    if let Err(p) = r {
        rt.stats.bump(&rt.stats.handler_panics);
        if first_panic.is_none() {
            *first_panic = Some(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{orec, Algorithm, TCell, Transaction};

    fn small_rt(algo: Algorithm) -> TmRuntime {
        TmRuntime::builder()
            .algorithm(algo)
            .contention_manager(ContentionManager::None)
            .serial_lock(SerialLockMode::None)
            .orec_log_size(4)
            .build()
    }

    fn orec_snapshot(rt: &TmRuntime) -> Vec<u64> {
        let t = &rt.inner.orecs;
        (0..t.len()).map(|i| t.load(i)).collect()
    }

    /// The fast-lane promise, checked against the runtime's own metadata:
    /// a read-only `atomic_ro` leaves every orec untouched (and unlocked),
    /// does not advance the global clock, and does not move NOrec's
    /// sequence lock — while the same body under plain `atomic` is also
    /// quiescent (invisible readers), and a *writing* transaction moves
    /// the metadata, so the snapshot comparison is known to be sensitive.
    #[test]
    fn ro_fast_lane_acquires_no_orec_and_moves_no_clock() {
        for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            let rt = small_rt(algo);
            let cells: Vec<TCell<u64>> = (0..64).map(TCell::new).collect();
            // Two writes so orec versions are non-trivial before the
            // snapshot (the first commit can release at version 0).
            rt.atomic(|tx| tx.write(&cells[0], 6));
            rt.atomic(|tx| tx.write(&cells[0], 7));

            let orecs_before = orec_snapshot(&rt);
            if algo != Algorithm::Norec {
                assert!(
                    orecs_before.iter().any(|&v| v != 0),
                    "sanity: the priming writes must be visible in some orec"
                );
            }
            let clock_before = rt.inner.clock.now();
            let seq_before = rt.inner.seqlock.load();

            for round in 0..50u64 {
                let sum = rt.atomic_ro(|tx| {
                    let mut s = 0u64;
                    for c in &cells {
                        s = s.wrapping_add(tx.read(c)?);
                    }
                    Ok(s)
                });
                assert_eq!(sum, 7 + (1..64).sum::<u64>(), "round {round} ({algo})");
            }

            let orecs_after = orec_snapshot(&rt);
            assert_eq!(orecs_before, orecs_after, "{algo}: RO commits moved an orec");
            assert!(
                orecs_after.iter().all(|&v| !orec::is_locked(v)),
                "{algo}: an orec is still locked after RO commits"
            );
            assert_eq!(rt.inner.clock.now(), clock_before, "{algo}: clock moved");
            assert_eq!(rt.inner.seqlock.load(), seq_before, "{algo}: seqlock moved");

            let s = rt.stats();
            assert_eq!(s.ro_fast_commits, 50, "{algo}");
            assert_eq!(s.ro_promotions, 0, "{algo}");
            assert_eq!(s.aborts, 0, "{algo}");

            // Sensitivity check: a writing transaction must move the same
            // metadata the assertions above read.
            rt.atomic(|tx| tx.fetch_add(&cells[1], 1));
            match algo {
                Algorithm::Norec => {
                    assert_ne!(rt.inner.seqlock.load(), seq_before, "norec commit must bump");
                }
                _ => {
                    assert_ne!(orec_snapshot(&rt), orecs_after, "a write must bump an orec");
                    assert_ne!(rt.inner.clock.now(), clock_before, "a write must tick the clock");
                }
            }
        }
    }

    /// Promotion is the inverse promise: the moment the "read-only"
    /// transaction writes, it must behave exactly like a full transaction
    /// — locking orecs / bumping the clock (or seqlock) — and be counted
    /// as a promotion, not a fast commit.
    #[test]
    fn promoted_ro_transaction_commits_like_a_full_one() {
        for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            let rt = small_rt(algo);
            let c = TCell::new(1u64);
            let orecs_before = orec_snapshot(&rt);
            let seq_before = rt.inner.seqlock.load();

            let v = rt.atomic_ro(|tx| {
                let v = tx.read(&c)?;
                tx.write(&c, v + 1)?; // falls off the fast lane here
                Ok(v)
            });
            assert_eq!(v, 1);
            assert_eq!(c.load_direct(), 2, "{algo}: promoted write must commit");

            let s = rt.stats();
            assert_eq!(s.ro_promotions, 1, "{algo}");
            assert_eq!(s.ro_fast_commits, 0, "{algo}");
            match algo {
                Algorithm::Norec => assert_ne!(rt.inner.seqlock.load(), seq_before, "{algo}"),
                _ => assert_ne!(orec_snapshot(&rt), orecs_before, "{algo}"),
            }
            assert!(
                orec_snapshot(&rt).iter().all(|&o| !orec::is_locked(o)),
                "{algo}: promoted commit left an orec locked"
            );
        }
    }

    /// The write-side mirror of the RO fast-lane promise: a transaction
    /// whose every write is silent (value equals committed contents) ends
    /// up with an empty write set and must commit like a read-only one —
    /// no orec movement, no clock tick, no seqlock bump — while still
    /// being counted under `silent_store_elisions`.
    #[test]
    fn all_silent_writes_commit_as_read_only() {
        for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            let rt = small_rt(algo);
            let cells: Vec<TCell<u64>> = (0..16).map(|_| TCell::new(u64::MAX)).collect();
            rt.atomic(|tx| {
                for (i, c) in cells.iter().enumerate() {
                    tx.write(c, i as u64 * 3)?;
                }
                Ok(())
            });

            let orecs_before = orec_snapshot(&rt);
            let clock_before = rt.inner.clock.now();
            let seq_before = rt.inner.seqlock.load();

            for round in 0..25u64 {
                rt.atomic(|tx| {
                    for (i, c) in cells.iter().enumerate() {
                        tx.write(c, i as u64 * 3)?; // same value: silent
                    }
                    Ok(())
                });
                assert_eq!(
                    rt.inner.clock.now(),
                    clock_before,
                    "{algo}: silent-only commit ticked the clock (round {round})"
                );
            }

            let orecs_after = orec_snapshot(&rt);
            assert_eq!(orecs_before, orecs_after, "{algo}: silent commits moved an orec");
            assert!(
                orecs_after.iter().all(|&v| !orec::is_locked(v)),
                "{algo}: an orec is still locked after silent commits"
            );
            assert_eq!(rt.inner.seqlock.load(), seq_before, "{algo}: seqlock moved");
            for (i, c) in cells.iter().enumerate() {
                assert_eq!(c.load_direct(), i as u64 * 3, "{algo}");
            }

            let s = rt.stats();
            assert_eq!(s.silent_store_elisions, 25 * 16, "{algo}");
            assert_eq!(s.read_only_commits, 25, "{algo}: all-silent txns take the RO path");
            assert_eq!(s.aborts, 0, "{algo}");

            // Sensitivity: one genuinely new value must move the metadata.
            rt.atomic(|tx| tx.write(&cells[0], 999));
            match algo {
                Algorithm::Norec => {
                    assert_ne!(rt.inner.seqlock.load(), seq_before, "norec commit must bump");
                }
                _ => {
                    assert_ne!(orec_snapshot(&rt), orecs_after, "a write must bump an orec");
                    assert_ne!(rt.inner.clock.now(), clock_before, "a write must tick the clock");
                }
            }
        }
    }

    /// A silent store to an address already in the redo log must NOT be
    /// elided: the buffered value — not committed memory — is what later
    /// reads and the write-back observe.
    #[test]
    fn buffered_addresses_are_never_silently_elided() {
        for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            let rt = small_rt(algo);
            let c = TCell::new(7u64);
            let seen = rt.atomic(|tx| {
                tx.write(&c, 5)?; // real write, enters the write set
                tx.write(&c, 7)?; // equals committed memory, but must land
                tx.read(&c)
            });
            assert_eq!(seen, 7, "{algo}: in-tx read must see the latest write");
            assert_eq!(c.load_direct(), 7, "{algo}");
        }
    }

    /// Conflict-free commits (clock still at the snapshot) must take the
    /// GV5-style elided path — one CAS, no commit-time validation — and a
    /// commit whose snapshot went stale must be counted as a retry instead.
    #[test]
    fn conflict_free_commit_elides_the_clock_cas() {
        for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            let rt = small_rt(algo);
            let c = TCell::new(0u64);
            for i in 1..=40u64 {
                rt.atomic(|tx| tx.write(&c, i));
            }
            let s = rt.stats();
            assert_eq!(s.clock_tick_elisions, 40, "{algo}: uncontended commits must elide");
            assert_eq!(s.clock_cas_retries, 0, "{algo}");
            assert_eq!(s.aborts, 0, "{algo}");

            // Stale snapshot: move the global time base from inside the
            // transaction body (standing in for a concurrent committer),
            // so the commit-time CAS must lose and fall back to the full
            // tick-and-validate path.
            rt.atomic(|tx| {
                tx.write(&c, 1234)?;
                match algo {
                    Algorithm::Norec => {
                        let snap = rt.inner.seqlock.load();
                        assert!(rt.inner.seqlock.try_begin_commit(snap));
                        rt.inner.seqlock.end_commit(snap);
                    }
                    _ => {
                        rt.inner.clock.tick();
                    }
                }
                Ok(())
            });
            assert_eq!(c.load_direct(), 1234, "{algo}");
            let s = rt.stats();
            assert_eq!(s.clock_tick_elisions, 40, "{algo}: stale commit must not elide");
            assert!(s.clock_cas_retries >= 1, "{algo}: stale commit must count a retry");
        }
    }
}
