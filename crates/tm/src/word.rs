//! The [`Word`] trait: types that fit in one transactional machine word.
//!
//! The runtime is *word-based*, like GCC's libitm: every transactional load
//! and store moves one 64-bit word, and conflict detection happens at word
//! granularity through the ownership-record table. Any type that can be
//! losslessly packed into a `u64` can live in a [`crate::TCell`].

/// A value that can be packed into a single 64-bit transactional word.
///
/// Implementations must round-trip: `T::from_word(v.to_word()) == v` for
/// every valid `v`. The runtime relies on this to reproduce exactly the
/// value that was stored.
///
/// # Examples
///
/// ```
/// use tm::Word;
///
/// assert_eq!(u32::from_word(7u32.to_word()), 7);
/// assert_eq!(bool::from_word(true.to_word()), true);
/// assert_eq!(i64::from_word((-3i64).to_word()), -3);
/// ```
pub trait Word: Copy + 'static {
    /// Packs `self` into a `u64` word.
    fn to_word(self) -> u64;
    /// Unpacks a value previously produced by [`Word::to_word`].
    fn from_word(w: u64) -> Self;
}

macro_rules! impl_word_uint {
    ($($t:ty),*) => {$(
        impl Word for $t {
            #[inline]
            fn to_word(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_word(w: u64) -> Self {
                w as $t
            }
        }
    )*};
}

macro_rules! impl_word_int {
    ($($t:ty),*) => {$(
        impl Word for $t {
            #[inline]
            fn to_word(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_word(w: u64) -> Self {
                w as $t
            }
        }
    )*};
}

impl_word_uint!(u8, u16, u32, u64, usize);
impl_word_int!(i8, i16, i32, i64, isize);

impl Word for bool {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

impl Word for () {
    #[inline]
    fn to_word(self) -> u64 {
        0
    }
    #[inline]
    fn from_word(_: u64) -> Self {}
}

impl Word for char {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        char::from_u32(w as u32).unwrap_or('\u{FFFD}')
    }
}

impl<T: Word> Word for Option<T> {
    /// Packs `None` as `u64::MAX` — usable for word types that never
    /// occupy the full 64-bit range (handles, small integers). For full
    /// range `u64`/`i64` payloads prefer an explicit sentinel of your own.
    #[inline]
    fn to_word(self) -> u64 {
        match self {
            None => u64::MAX,
            Some(v) => v.to_word(),
        }
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        if w == u64::MAX {
            None
        } else {
            Some(T::from_word(w))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_roundtrip() {
        assert_eq!(u8::from_word(255u8.to_word()), 255u8);
        assert_eq!(u16::from_word(65535u16.to_word()), 65535u16);
        assert_eq!(u32::from_word(u32::MAX.to_word()), u32::MAX);
        assert_eq!(u64::from_word(u64::MAX.to_word()), u64::MAX);
        assert_eq!(usize::from_word(usize::MAX.to_word()), usize::MAX);
    }

    #[test]
    fn int_roundtrip_preserves_sign() {
        assert_eq!(i8::from_word((-1i8).to_word()), -1i8);
        assert_eq!(i16::from_word(i16::MIN.to_word()), i16::MIN);
        assert_eq!(i32::from_word(i32::MIN.to_word()), i32::MIN);
        assert_eq!(i64::from_word(i64::MIN.to_word()), i64::MIN);
        assert_eq!(isize::from_word((-77isize).to_word()), -77isize);
    }

    #[test]
    fn bool_roundtrip() {
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
        // Any nonzero word decodes as true.
        assert!(bool::from_word(42));
    }

    #[test]
    fn char_roundtrip() {
        for c in ['a', 'é', '\u{1F600}', '\0'] {
            assert_eq!(char::from_word(c.to_word()), c);
        }
    }

    #[test]
    fn char_invalid_decodes_to_replacement() {
        assert_eq!(char::from_word(0xD800), '\u{FFFD}');
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u32>::from_word(None::<u32>.to_word()), None);
        assert_eq!(Option::<u32>::from_word(Some(9u32).to_word()), Some(9));
    }

    #[test]
    fn unit_roundtrip() {
        <() as Word>::from_word(().to_word());
    }
}
