//! Error and control-flow types for transactions.

use std::error::Error;
use std::fmt;

/// Why a transaction body is unwinding.
///
/// Transactional reads and writes return `Result<_, Abort>`; user code
/// propagates with `?`. [`Abort::Conflict`] is produced by the runtime and
/// triggers a retry; [`Abort::Cancelled`] is the Draft C++ TM
/// Specification's `transaction_cancel`, produced by [`crate::cancel`],
/// which rolls the transaction back *without* retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Abort {
    /// The runtime detected a conflict; the attempt will be rolled back and
    /// retried.
    Conflict,
    /// The program requested `transaction_cancel`: roll back and return
    /// control without retrying. Only atomic transactions may cancel.
    Cancelled,
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Abort::Conflict => write!(f, "transaction conflict"),
            Abort::Cancelled => write!(f, "transaction cancelled"),
        }
    }
}

impl Error for Abort {}

/// Returned by [`crate::TmRuntime::try_atomic`] when the transaction body
/// cancelled itself (the `transaction_cancel` statement of the Draft C++ TM
/// Specification).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction cancelled by transaction_cancel")
    }
}

impl Error for Cancelled {}

/// Requests `transaction_cancel`: undo this transaction's effects and
/// return [`Cancelled`] from [`crate::TmRuntime::try_atomic`].
///
/// # Examples
///
/// ```
/// use tm::{TCell, TmRuntime, Transaction};
///
/// let rt = TmRuntime::default_runtime();
/// let c = TCell::new(0u32);
/// let r: Result<(), _> = rt.try_atomic(|tx| {
///     tx.write(&c, 99)?;
///     tm::cancel() // roll the write back
/// });
/// assert!(r.is_err());
/// assert_eq!(c.load_direct(), 0);
/// ```
pub fn cancel<R>() -> Result<R, Abort> {
    Err(Abort::Cancelled)
}

/// Why a bounded transaction ([`crate::TmRuntime::atomic_with`],
/// [`crate::TmRuntime::relaxed_with`]) returned without committing.
///
/// Unbounded entry points never produce [`TxError::RetryLimit`] or
/// [`TxError::Timeout`]; they only arise when [`crate::TxOptions`] set the
/// corresponding bound. In every case the runtime has fully rolled the
/// transaction back and released all locks — the caller may retry, fall
/// back to a coarse lock, or surface the error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TxError {
    /// The body requested `transaction_cancel` (atomic transactions only).
    Cancelled,
    /// The attempt aborted more than `max_retries` times in a row.
    RetryLimit {
        /// The configured retry budget that was exhausted.
        retries: u32,
    },
    /// The configured deadline passed before an attempt committed.
    Timeout,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Cancelled => write!(f, "transaction cancelled by transaction_cancel"),
            TxError::RetryLimit { retries } => {
                write!(f, "transaction exceeded its retry budget of {retries}")
            }
            TxError::Timeout => write!(f, "transaction deadline expired before commit"),
        }
    }
}

impl Error for TxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(Abort::Conflict.to_string(), "transaction conflict");
        assert_eq!(Abort::Cancelled.to_string(), "transaction cancelled");
        assert!(Cancelled.to_string().contains("transaction_cancel"));
    }

    #[test]
    fn cancel_returns_cancelled() {
        let r: Result<(), Abort> = cancel();
        assert_eq!(r, Err(Abort::Cancelled));
    }

    #[test]
    fn tx_error_display() {
        assert!(TxError::Cancelled.to_string().contains("transaction_cancel"));
        assert!(TxError::RetryLimit { retries: 7 }.to_string().contains('7'));
        assert!(TxError::Timeout.to_string().contains("deadline"));
    }
}
