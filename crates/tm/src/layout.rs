//! Compile-time layout facts for the false-sharing-sensitive structures.
//!
//! The contention story of this runtime rests on three structures being
//! exactly cache-line shaped: commit-clock shards (each committer CASes
//! only its own line), orec stripes (unrelated data blocks never share an
//! orec line), and the NOrec seqlock (alone on its line). The definitions
//! carry in-source `const` assertions; these public constants re-export
//! the measured layout so the `layout_guard` integration test — and any
//! downstream crate padding its own per-thread slots — can pin them from
//! outside without access to the private types.

use crate::clock::{ClockShard, SeqLock};
use crate::orec::OrecStripe;

/// The cache-line size every padded structure in this crate targets.
pub const CACHE_LINE: usize = 64;

/// Size in bytes of one commit-clock shard (timestamp + telemetry).
pub const CLOCK_SHARD_SIZE: usize = std::mem::size_of::<ClockShard>();

/// Alignment of one commit-clock shard.
pub const CLOCK_SHARD_ALIGN: usize = std::mem::align_of::<ClockShard>();

/// Size in bytes of one orec stripe (a full cache line of orecs).
pub const OREC_STRIPE_SIZE: usize = std::mem::size_of::<OrecStripe>();

/// Alignment of one orec stripe.
pub const OREC_STRIPE_ALIGN: usize = std::mem::align_of::<OrecStripe>();

/// Size in bytes of the NOrec sequence lock.
pub const SEQLOCK_SIZE: usize = std::mem::size_of::<SeqLock>();

/// Alignment of the NOrec sequence lock.
pub const SEQLOCK_ALIGN: usize = std::mem::align_of::<SeqLock>();
