//! Global time bases: the sharded commit clock (eager/lazy algorithms) and
//! the NOrec sequence lock.
//!
//! # Why sharded
//!
//! Every read-write commit in the orec-based algorithms must obtain a
//! globally unique, monotonically ordered timestamp. With a single clock
//! word, that is one CAS on one cache line for the whole process — the
//! paper's `ml_wt` lineage scaling wall (and the top ROADMAP item once the
//! wire front end could drive real multi-core load). [`ShardedClock`]
//! splits the clock into up to 64 per-shard counters, each on its own
//! cache line, with thread→shard affinity:
//!
//! * **Timestamps** encode `(counter << shard_bits) | shard_id`, so every
//!   timestamp is globally unique (distinct shard residues) and plain
//!   `u64` comparison still orders them. With one shard the arithmetic
//!   degenerates to the classic `+1` global clock, bit for bit.
//! * **Commit** CASes only the committer's own shard line; threads with
//!   different affinity never contend on a clock CAS.
//! * **Snapshots** are a lazy max: transaction begin reads the own-shard
//!   line plus a thread-cached view of the other shards
//!   ([`ShardedClock::now_cached`]). A stale-**low** snapshot is always
//!   safe — reads that see newer orec versions trigger the ordinary
//!   TinySTM extension, which performs the full cross-shard
//!   [`ShardedClock::sync`]. TLC-style: cross-shard synchronization is
//!   paid only on validation pressure, not on every begin.
//! * **GV5 elision** ([`ShardedClock::commit_tick`]) still works: a
//!   committer first publishes its own-shard CAS, *then* scans the other
//!   shards. If none moved past its snapshot, no transaction committed
//!   since the snapshot was taken and commit-time validation is elided.
//!   The scan must come after the CAS: two concurrent committers on
//!   different shards can otherwise both scan clean and both elide, which
//!   is unserializable. Post-publication, any pair of eliders has a
//!   temporal contradiction (each CAS precedes its own scan, and a clean
//!   scan precedes the other's CAS), so at most one transaction in any
//!   concurrent group skips validation — exactly the single-winner
//!   guarantee the one-word GV5 CAS gave for free.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of clock shards (timestamps reserve 6 low bits at most).
pub const MAX_CLOCK_SHARDS: usize = 64;

/// Process-wide thread ordinal source for shard affinity. Deliberately
/// shared by all clocks: a thread keeps one ordinal for life, and each
/// clock masks it down to its own shard count.
static THREAD_ORDINALS: AtomicU64 = AtomicU64::new(0);

/// Identity source for [`ShardedClock`] instances, used to key the
/// thread-local cached cross-shard view. Ids start at 1 so the zeroed
/// thread-local cache never aliases a real clock.
static CLOCK_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's process-wide ordinal (assigned on first use).
    static THREAD_ORD: u64 = THREAD_ORDINALS.fetch_add(1, Ordering::Relaxed);
    /// Cached cross-shard maximum: `(clock id, highest timestamp seen)`.
    /// Only ever *behind* the real maximum (stale-low), never ahead: every
    /// stored value was loaded from a shard line, so using it as a
    /// snapshot floor can only cost an extension, never admit a torn read.
    static CLOCK_VIEW: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

/// One clock shard: the timestamp word plus its contention telemetry,
/// padded to exactly one cache line so a committer's CAS on shard `k`
/// never invalidates shard `j`'s line under another committer.
#[derive(Default)]
#[repr(align(64))]
pub(crate) struct ClockShard {
    /// Latest timestamp issued on this shard.
    value: AtomicU64,
    /// Commit/rollback ticks issued on this shard.
    ticks: AtomicU64,
    /// CAS attempts on this shard lost to another thread with the same
    /// affinity (never to a thread on a different shard).
    cas_retries: AtomicU64,
    /// Full cross-shard synchronizations performed by threads of this
    /// affinity (snapshot extensions / validation pressure).
    syncs: AtomicU64,
}

const _: () = assert!(std::mem::size_of::<ClockShard>() == 64, "ClockShard must fill one cache line");
const _: () = assert!(std::mem::align_of::<ClockShard>() == 64, "ClockShard must start a cache line");

/// A point-in-time copy of one shard's counters; see
/// [`crate::TmRuntime::clock_shard_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClockShardStats {
    /// Latest timestamp issued on this shard (0 if never ticked).
    pub value: u64,
    /// Commit/rollback ticks issued on this shard.
    pub ticks: u64,
    /// Same-shard CAS losses (cross-shard committers never contend).
    pub cas_retries: u64,
    /// Full cross-shard synchronizations by threads of this affinity.
    pub syncs: u64,
}

/// The sharded global version clock used by the orec-based algorithms.
pub(crate) struct ShardedClock {
    shards: Box<[ClockShard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    /// `log2(shards.len())` — low bits of every timestamp hold the shard.
    shard_bits: u32,
    /// Instance id keying the thread-local cached view.
    id: u64,
}

impl ShardedClock {
    /// Creates a clock at time 0 with `nshards` per-shard counters.
    ///
    /// # Panics
    ///
    /// Panics unless `nshards` is a power of two in `1..=64`.
    pub fn new(nshards: usize) -> Self {
        assert!(
            nshards.is_power_of_two() && (1..=MAX_CLOCK_SHARDS).contains(&nshards),
            "clock shard count {nshards} must be a power of two in 1..=64"
        );
        ShardedClock {
            shards: (0..nshards).map(|_| ClockShard::default()).collect(),
            mask: (nshards - 1) as u64,
            shard_bits: nshards.trailing_zeros(),
            id: CLOCK_IDS.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The calling thread's shard affinity under this clock.
    #[inline]
    pub fn my_shard(&self) -> usize {
        (THREAD_ORD.with(|o| *o) & self.mask) as usize
    }

    /// The next timestamp after `from` carrying this shard's residue:
    /// strictly greater than `from`, globally unique per shard.
    #[inline]
    fn next_on(&self, from: u64, shard: u64) -> u64 {
        (((from >> self.shard_bits) + 1) << self.shard_bits) | shard
    }

    /// Scans every shard line for the current global maximum.
    #[inline]
    fn scan_max(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.value.load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }

    /// Folds a freshly observed timestamp into the thread-cached view.
    #[inline]
    fn cache_put(&self, t: u64) {
        CLOCK_VIEW.with(|c| {
            let (id, cached) = c.get();
            let floor = if id == self.id { cached.max(t) } else { t };
            c.set((self.id, floor));
        });
    }

    /// Current global time: the exact lazy max over all shards. Costs one
    /// load per shard; begin paths use [`ShardedClock::now_cached`].
    pub fn now(&self) -> u64 {
        let m = self.scan_max();
        self.cache_put(m);
        m
    }

    /// A cheap snapshot for transaction begin: the own-shard line joined
    /// with this thread's cached cross-shard view — no full scan. May be
    /// stale-low (costing a snapshot extension on the first read that
    /// notices), never stale-high: every cached value was read from a
    /// shard line of *this* clock, so it is a published timestamp.
    #[inline]
    pub fn now_cached(&self) -> u64 {
        let own = self.shards[self.my_shard()].value.load(Ordering::Acquire);
        let cached = CLOCK_VIEW.with(|c| {
            let (id, cached) = c.get();
            if id == self.id {
                cached
            } else {
                0
            }
        });
        let t = own.max(cached);
        if cached < t {
            self.cache_put(t);
        }
        t
    }

    /// Full cross-shard synchronization: scan every shard, refresh the
    /// thread-cached view, count it against the caller's affinity shard.
    /// Engines call this exactly where validation pressure appears (the
    /// snapshot-extension path), so quiescent threads never pay the scan.
    pub fn sync(&self) -> u64 {
        self.shards[self.my_shard()]
            .syncs
            .fetch_add(1, Ordering::Relaxed);
        self.now()
    }

    /// Advances this thread's shard past everything published, returning
    /// the new globally maximal timestamp. The rollback / irrevocable
    /// publish path: callers only need a fresh unique timestamp, not the
    /// elision verdict.
    ///
    /// Must be called with the caller's write-set orecs already held (or
    /// the caller serialized): the cross-shard scan inside is what makes
    /// the returned timestamp exceed every snapshot a concurrent reader
    /// could have completed before our locks became visible.
    pub fn tick(&self) -> u64 {
        let k = self.my_shard();
        let slot = &self.shards[k];
        let mut own = slot.value.load(Ordering::Acquire);
        loop {
            let m = self.scan_max().max(own);
            let end = self.next_on(m, k as u64);
            match slot
                .value
                .compare_exchange(own, end, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    slot.ticks.fetch_add(1, Ordering::Relaxed);
                    self.cache_put(end);
                    return end;
                }
                Err(cur) => {
                    slot.cas_retries.fetch_add(1, Ordering::Relaxed);
                    own = cur;
                }
            }
        }
    }

    /// The commit-time tick: returns `(end timestamp, needs_validation)`.
    ///
    /// `needs_validation == false` is the GV5-style elided path: this
    /// commit's own-shard CAS published first, and the *post-publication*
    /// scan found no other shard past `snapshot` — so no transaction
    /// committed since the caller's snapshot and its read set is provably
    /// current. The scan ordering is load-bearing (see the module docs):
    /// scanning before the CAS would let two committers on different
    /// shards both elide against each other.
    ///
    /// `needs_validation == true` covers both fallbacks: another shard
    /// advanced past the snapshot, or our own shard did (a same-affinity
    /// thread committed). Either way `end` is already published and the
    /// caller must validate its reads before releasing orecs at `end`.
    ///
    /// The returned stamp always exceeds every timestamp published before
    /// the caller's write-set locks became visible. When the
    /// post-publication scan finds a foreign shard above the stamp claimed
    /// from a stale-low snapshot, the own shard is re-advanced past the
    /// scan maximum and that higher stamp is returned: releasing orecs at
    /// or below a live reader's snapshot would let that reader accept the
    /// new values against version checks — a torn write set that
    /// read-only transactions (which never revalidate) cannot detect.
    ///
    /// Same lock-ordering contract as [`ShardedClock::tick`].
    pub fn commit_tick(&self, snapshot: u64) -> (u64, bool) {
        let k = self.my_shard();
        let slot = &self.shards[k];
        let mut own = slot.value.load(Ordering::Acquire);
        loop {
            let (from, end) = if own <= snapshot {
                // Our shard has not moved past the snapshot; try to claim
                // the timestamp right after it.
                (own, self.next_on(snapshot, k as u64))
            } else {
                // A same-affinity thread committed since our snapshot:
                // the elided verdict is already lost, take a plain tick.
                (own, self.next_on(self.scan_max().max(own), k as u64))
            };
            match slot
                .value
                .compare_exchange(from, end, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    slot.ticks.fetch_add(1, Ordering::Relaxed);
                    if from > snapshot {
                        self.cache_put(end);
                        return (end, true);
                    }
                    // Post-publication cross-shard check: our CAS is
                    // visible, so a racing committer either sees it (and
                    // validates) or published before this scan (and we
                    // see it here and validate).
                    let mut clean = true;
                    let mut max_seen = end;
                    for (j, s) in self.shards.iter().enumerate() {
                        if j == k {
                            continue;
                        }
                        let v = s.value.load(Ordering::Acquire);
                        clean &= v <= snapshot;
                        max_seen = max_seen.max(v);
                    }
                    if max_seen <= end {
                        self.cache_put(end);
                        return (end, !clean);
                    }
                    // A stale-low snapshot: some shard is already past the
                    // stamp we just published. Orecs released at `end`
                    // would carry versions at or below live readers'
                    // snapshots — new values that pass every `<= rv` check
                    // (a torn write set no read-only transaction would
                    // ever revalidate). Re-advance our shard past
                    // everything published and release at that stamp
                    // instead; anything published after this second scan
                    // postdates our (already visible) write-set locks, so
                    // its readers abort on the locks, not on versions.
                    let mut own = end;
                    loop {
                        let m = self.scan_max().max(own);
                        let bumped = self.next_on(m, k as u64);
                        match slot.value.compare_exchange(
                            own,
                            bumped,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => {
                                self.cache_put(bumped);
                                return (bumped, true);
                            }
                            Err(cur) => {
                                slot.cas_retries.fetch_add(1, Ordering::Relaxed);
                                own = cur;
                            }
                        }
                    }
                }
                Err(cur) => {
                    slot.cas_retries.fetch_add(1, Ordering::Relaxed);
                    own = cur;
                }
            }
        }
    }

    /// Raises this clock so every future tick exceeds `v`. Used by the
    /// algorithm switch to align the orec clock with NOrec's sequence lock:
    /// the caller must hold the serial lock exclusively (no committer can
    /// race the raise), so commit stamps minted after the switch are
    /// guaranteed to exceed every stamp published before it.
    pub fn raise_to(&self, v: u64) {
        let k = self.my_shard();
        let slot = &self.shards[k];
        loop {
            if self.scan_max() >= v {
                return;
            }
            let cur = slot.value.load(Ordering::Acquire);
            let end = self.next_on(v, k as u64);
            if slot
                .value
                .compare_exchange(cur, end, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.cache_put(end);
                return;
            }
        }
    }

    /// Copies every shard's counters.
    pub fn shard_stats(&self) -> Vec<ClockShardStats> {
        self.shards
            .iter()
            .map(|s| ClockShardStats {
                value: s.value.load(Ordering::Acquire),
                ticks: s.ticks.load(Ordering::Relaxed),
                cas_retries: s.cas_retries.load(Ordering::Relaxed),
                syncs: s.syncs.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl fmt::Debug for ShardedClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedClock")
            .field("shards", &self.shards.len())
            .field("now", &self.scan_max())
            .finish()
    }
}

/// NOrec's single global sequence lock.
///
/// Even values mean "no writer committing"; a committer CASes the value odd,
/// writes back its buffer, then stores `snapshot + 2`. Readers perform
/// value-based validation whenever they observe the sequence moving.
///
/// Cache-line-aligned: the paper found memcached's small writer
/// transactions bottleneck on exactly this word ("the frequency of small
/// writer transactions induced a bottleneck on internal NOrec metadata"),
/// so it must at least not pay for false sharing with the version clock or
/// stats counters on top of its true contention.
#[derive(Default)]
#[repr(align(64))]
pub struct SeqLock(AtomicU64);

const _: () = assert!(std::mem::align_of::<SeqLock>() == 64, "SeqLock must start a cache line");

impl SeqLock {
    /// Creates an unlocked sequence lock at time 0.
    pub const fn new() -> Self {
        SeqLock(AtomicU64::new(0))
    }

    /// Raw load.
    #[inline]
    pub fn load(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Spins until the value is even, returning it.
    #[inline]
    pub fn wait_even(&self) -> u64 {
        loop {
            let v = self.load();
            if v & 1 == 0 {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Attempts to begin a commit by CASing `snapshot -> snapshot + 1`.
    #[inline]
    pub fn try_begin_commit(&self, snapshot: u64) -> bool {
        debug_assert_eq!(snapshot & 1, 0);
        self.0
            .compare_exchange(snapshot, snapshot + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Ends a commit begun at `snapshot`, publishing `snapshot + 2`.
    #[inline]
    pub fn end_commit(&self, snapshot: u64) {
        debug_assert_eq!(self.load(), snapshot + 1);
        self.0.store(snapshot + 2, Ordering::Release);
    }

    /// Raises the sequence to at least `v`, rounded up to even. The
    /// algorithm-switch twin of [`ShardedClock::raise_to`]: the caller must
    /// hold the serial lock exclusively, so no committer holds the lock
    /// (the value is even) and none can race the store.
    pub fn raise_to(&self, v: u64) {
        let cur = self.load();
        debug_assert_eq!(cur & 1, 0, "raise_to with a committer in flight");
        let target = (v + 1) & !1;
        if target > cur {
            self.0.store(target, Ordering::Release);
        }
    }
}

impl fmt::Debug for SeqLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SeqLock").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_degenerates_to_the_plus_one_clock() {
        let c = ShardedClock::new(1);
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
        assert_eq!(c.now_cached(), 2);
    }

    #[test]
    fn sharded_ticks_are_monotonic_on_one_thread() {
        let c = ShardedClock::new(8);
        let mut last = c.now();
        for _ in 0..100 {
            let t = c.tick();
            assert!(t > last, "tick {t} did not exceed {last}");
            assert_eq!(t & 7, c.my_shard() as u64, "residue must name the shard");
            last = t;
        }
        assert_eq!(c.now(), last);
    }

    #[test]
    fn clock_ticks_are_unique_across_threads() {
        for nshards in [1usize, 4, 8] {
            let c = std::sync::Arc::new(ShardedClock::new(nshards));
            let mut handles = vec![];
            for _ in 0..4 {
                let c = c.clone();
                handles.push(std::thread::spawn(move || {
                    (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
                }));
            }
            let mut all: Vec<u64> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 4000, "duplicate commit timestamps ({nshards} shards)");
        }
    }

    #[test]
    fn conflict_free_commit_tick_elides_validation() {
        let c = ShardedClock::new(8);
        let snap = c.now_cached();
        let (end, validate) = c.commit_tick(snap);
        assert!(!validate, "quiescent clock must elide");
        assert!(end > snap);
        // Single-thread steady state keeps eliding: the own shard is the max.
        let snap2 = c.now_cached();
        assert_eq!(snap2, end);
        let (end2, validate2) = c.commit_tick(snap2);
        assert!(!validate2);
        assert!(end2 > end);
    }

    #[test]
    fn stale_snapshot_commit_tick_demands_validation() {
        let c = std::sync::Arc::new(ShardedClock::new(8));
        let snap = c.now_cached();
        // A commit from a different thread (different ordinal, usually a
        // different shard — but even same-shard staleness must be seen).
        {
            let c = c.clone();
            std::thread::spawn(move || c.tick()).join().unwrap();
        }
        let (end, validate) = c.commit_tick(snap);
        assert!(validate, "a concurrent commit after the snapshot must force validation");
        assert!(end > snap);
        assert!(c.now() >= end);
    }

    #[test]
    fn same_shard_staleness_forces_validation() {
        // One shard: any tick after the snapshot lands on *our* shard.
        let c = ShardedClock::new(1);
        let snap = c.now_cached();
        c.tick();
        let (end, validate) = c.commit_tick(snap);
        assert!(validate);
        assert!(end > snap);
        let stats = c.shard_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].ticks, 2);
        assert_eq!(stats[0].value, end);
    }

    #[test]
    fn cached_view_is_keyed_per_clock_instance() {
        let a = ShardedClock::new(8);
        let b = ShardedClock::new(8);
        let ta = a.tick();
        assert!(a.now_cached() >= ta);
        // Clock b must not inherit a's cached view (stale-high would be
        // unsound for b): a fresh clock still reads time 0.
        assert_eq!(b.now_cached(), 0);
        // And coming back to a, the own-shard line alone restores the time.
        assert!(a.now_cached() >= ta);
    }

    #[test]
    fn sync_counts_against_the_callers_shard() {
        let c = ShardedClock::new(4);
        let before: u64 = c.shard_stats().iter().map(|s| s.syncs).sum();
        c.sync();
        c.sync();
        let stats = c.shard_stats();
        let after: u64 = stats.iter().map(|s| s.syncs).sum();
        assert_eq!(after - before, 2);
        assert_eq!(stats[c.my_shard()].syncs, 2);
    }

    #[test]
    fn stale_snapshot_commit_stamp_exceeds_every_published_timestamp() {
        // A committer whose snapshot is stale-low (cold home shard, cached
        // view behind a hot foreign shard) must still publish a commit
        // timestamp above the global maximum: eager/lazy release write-set
        // orecs at this stamp, and a stamp at or below a live reader's
        // snapshot lets that reader accept post-commit values as
        // pre-snapshot ones — a torn write set no validation catches.
        let c = std::sync::Arc::new(ShardedClock::new(8));
        let snap = c.now_cached();
        let k = c.my_shard();
        // Drive a *different* shard far ahead. Spawned threads get fresh
        // ordinals; retry any that land back on our own shard.
        let mut hot = 0;
        while hot == 0 {
            let c2 = c.clone();
            hot = std::thread::spawn(move || {
                if c2.my_shard() == k {
                    return 0;
                }
                (0..64).map(|_| c2.tick()).max().unwrap()
            })
            .join()
            .unwrap();
        }
        let (end, validate) = c.commit_tick(snap);
        assert!(validate, "foreign commits past the snapshot must force validation");
        assert!(end > hot, "commit stamp {end} must exceed the hot shard's {hot}");
        assert_eq!(c.scan_max(), end, "the fresh stamp is the new global max");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = ShardedClock::new(3);
    }

    #[test]
    fn seqlock_commit_protocol() {
        let s = SeqLock::new();
        let snap = s.wait_even();
        assert!(s.try_begin_commit(snap));
        assert_eq!(s.load(), snap + 1);
        assert!(!s.try_begin_commit(snap), "second committer must fail");
        s.end_commit(snap);
        assert_eq!(s.load(), snap + 2);
    }

    #[test]
    fn seqlock_stale_snapshot_rejected() {
        let s = SeqLock::new();
        let snap = s.wait_even();
        assert!(s.try_begin_commit(snap));
        s.end_commit(snap);
        assert!(!s.try_begin_commit(snap), "stale snapshot must be rejected");
    }
}
