//! Global time bases: the shared version clock (eager/lazy algorithms) and
//! the NOrec sequence lock.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The global version clock used by the orec-based algorithms
/// (TL2/TinySTM-style timestamp extension).
///
/// Aligned to its own cache line: every committer CASes this word, and it
/// must not false-share with neighboring runtime fields (the serial lock,
/// the stats counters) that readers touch on every transaction begin.
#[derive(Default)]
#[repr(align(64))]
pub struct GlobalClock(AtomicU64);

impl GlobalClock {
    /// Creates a clock at time 0.
    pub const fn new() -> Self {
        GlobalClock(AtomicU64::new(0))
    }

    /// Current time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances the clock, returning the *new* time (a unique commit
    /// timestamp for the caller).
    #[inline]
    pub fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// TL2 GV5-style conflict-free tick: CAS `expected -> expected + 1`.
    ///
    /// Success proves no transaction committed since the caller sampled
    /// `expected` as its snapshot — the snapshot is still *current*, so the
    /// caller may stamp its writes with `expected + 1` and skip commit-time
    /// validation entirely. Failure means the clock moved; the caller falls
    /// back to [`GlobalClock::tick`] plus full validation. Unlike raw GV5
    /// stamping (which publishes versions the clock has not reached and
    /// forces readers to repair the clock), the CAS keeps the invariant
    /// that every published orec version is ≤ the clock.
    #[inline]
    pub fn try_tick_from(&self, expected: u64) -> bool {
        self.0
            .compare_exchange(expected, expected + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

impl fmt::Debug for GlobalClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("GlobalClock").field(&self.now()).finish()
    }
}

/// NOrec's single global sequence lock.
///
/// Even values mean "no writer committing"; a committer CASes the value odd,
/// writes back its buffer, then stores `snapshot + 2`. Readers perform
/// value-based validation whenever they observe the sequence moving.
///
/// Cache-line-aligned: the paper found memcached's small writer
/// transactions bottleneck on exactly this word ("the frequency of small
/// writer transactions induced a bottleneck on internal NOrec metadata"),
/// so it must at least not pay for false sharing with the version clock or
/// stats counters on top of its true contention.
#[derive(Default)]
#[repr(align(64))]
pub struct SeqLock(AtomicU64);

impl SeqLock {
    /// Creates an unlocked sequence lock at time 0.
    pub const fn new() -> Self {
        SeqLock(AtomicU64::new(0))
    }

    /// Raw load.
    #[inline]
    pub fn load(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Spins until the value is even, returning it.
    #[inline]
    pub fn wait_even(&self) -> u64 {
        loop {
            let v = self.load();
            if v & 1 == 0 {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Attempts to begin a commit by CASing `snapshot -> snapshot + 1`.
    #[inline]
    pub fn try_begin_commit(&self, snapshot: u64) -> bool {
        debug_assert_eq!(snapshot & 1, 0);
        self.0
            .compare_exchange(snapshot, snapshot + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Ends a commit begun at `snapshot`, publishing `snapshot + 2`.
    #[inline]
    pub fn end_commit(&self, snapshot: u64) {
        debug_assert_eq!(self.load(), snapshot + 1);
        self.0.store(snapshot + 2, Ordering::Release);
    }
}

impl fmt::Debug for SeqLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SeqLock").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ticks_monotonically() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn clock_ticks_are_unique_across_threads() {
        let c = std::sync::Arc::new(GlobalClock::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "duplicate commit timestamps issued");
    }

    #[test]
    fn conflict_free_tick_is_a_snapshot_cas() {
        let c = GlobalClock::new();
        assert!(c.try_tick_from(0), "current snapshot must win the CAS");
        assert_eq!(c.now(), 1);
        assert!(!c.try_tick_from(0), "stale snapshot must lose the CAS");
        assert_eq!(c.now(), 1, "a failed CAS must not move the clock");
        assert_eq!(c.tick(), 2);
        assert!(c.try_tick_from(2));
        assert_eq!(c.now(), 3);
    }

    #[test]
    fn seqlock_commit_protocol() {
        let s = SeqLock::new();
        let snap = s.wait_even();
        assert!(s.try_begin_commit(snap));
        assert_eq!(s.load(), snap + 1);
        assert!(!s.try_begin_commit(snap), "second committer must fail");
        s.end_commit(snap);
        assert_eq!(s.load(), snap + 2);
    }

    #[test]
    fn seqlock_stale_snapshot_rejected() {
        let s = SeqLock::new();
        let snap = s.wait_even();
        assert!(s.try_begin_commit(snap));
        s.end_commit(snap);
        assert!(!s.try_begin_commit(snap), "stale snapshot must be rejected");
    }
}
