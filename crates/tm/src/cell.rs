//! Transactional storage: [`TWord`], [`TCell`], and [`TBytes`].
//!
//! All transactional state in this runtime lives in atomic 64-bit words.
//! This mirrors GCC libitm's word-based instrumentation and — crucially for
//! a Rust implementation — keeps the *eager, write-through* algorithm sound:
//! a doomed transaction may publish values that a concurrent transaction
//! observes before validation catches the conflict, so every access must be
//! an atomic (not plain) memory operation to avoid undefined behavior.
//! Validation, not the type system, provides isolation.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::word::Word;

/// One transactional machine word: the unit of instrumentation, conflict
/// detection, and logging. [`TCell`] and [`TBytes`] are built from these.
#[repr(transparent)]
#[derive(Default)]
pub struct TWord(pub(crate) AtomicU64);

impl TWord {
    /// Creates a word holding `v`.
    pub const fn new(v: u64) -> Self {
        TWord(AtomicU64::new(v))
    }

    /// The stable address used to map this word onto an ownership record.
    #[inline]
    pub(crate) fn addr(&self) -> usize {
        self as *const TWord as usize
    }

    /// Non-transactional load. Only meaningful when the caller has external
    /// reasons to believe no transaction is mid-flight on this word (e.g.
    /// single-threaded setup, or data privatized by a lock in the paper's
    /// "IP" branch).
    #[inline]
    pub fn load_direct(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Non-transactional store; see [`TWord::load_direct`] for when this is
    /// appropriate.
    #[inline]
    pub fn store_direct(&self, v: u64) {
        self.0.store(v, Ordering::Release);
    }

    /// Non-transactional atomic read-modify-write add, returning the
    /// previous value. This models memcached's `lock incr` inline-assembly
    /// reference counting — the operation the paper classifies as *unsafe*
    /// inside transactions until the "Max" stage replaces it.
    #[inline]
    pub fn fetch_add_direct(&self, v: u64) -> u64 {
        self.0.fetch_add(v, Ordering::AcqRel)
    }

    /// Non-transactional atomic subtract, returning the previous value.
    #[inline]
    pub fn fetch_sub_direct(&self, v: u64) -> u64 {
        self.0.fetch_sub(v, Ordering::AcqRel)
    }

    /// Non-transactional compare-and-swap; returns `Ok(previous)` on
    /// success.
    #[inline]
    pub fn compare_exchange_direct(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.0
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }
}

impl fmt::Debug for TWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TWord").field(&self.load_direct()).finish()
    }
}

/// A typed transactional cell holding one [`Word`]-packable value.
///
/// `TCell` is the reproduction's analogue of a shared variable accessed
/// inside a GCC `__transaction` block. Transactions read it with
/// [`crate::Transaction::read`] and write it with
/// [`crate::Transaction::write`]; lock-based code (the paper's baseline
/// branches) uses the `*_direct` accessors.
///
/// # Examples
///
/// ```
/// use tm::{TCell, TmRuntime, Transaction};
///
/// let rt = TmRuntime::default_runtime();
/// let counter = TCell::new(0u64);
/// rt.atomic(|tx| {
///     let v = tx.read(&counter)?;
///     tx.write(&counter, v + 1)
/// });
/// assert_eq!(counter.load_direct(), 1);
/// ```
pub struct TCell<T> {
    word: TWord,
    _marker: PhantomData<T>,
}

impl<T: Word> TCell<T> {
    /// Creates a cell holding `v`.
    pub fn new(v: T) -> Self {
        TCell {
            word: TWord::new(v.to_word()),
            _marker: PhantomData,
        }
    }

    /// The underlying transactional word.
    #[inline]
    pub fn word(&self) -> &TWord {
        &self.word
    }

    /// Non-transactional typed load; see [`TWord::load_direct`].
    #[inline]
    pub fn load_direct(&self) -> T {
        T::from_word(self.word.load_direct())
    }

    /// Non-transactional typed store; see [`TWord::store_direct`].
    #[inline]
    pub fn store_direct(&self, v: T) {
        self.word.store_direct(v.to_word());
    }
}

impl<T: Word + Default> Default for TCell<T> {
    fn default() -> Self {
        TCell::new(T::default())
    }
}

impl<T: Word + fmt::Debug> fmt::Debug for TCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TCell").field(&self.load_direct()).finish()
    }
}

/// A fixed-length transactional byte buffer.
///
/// Bytes are stored packed into 64-bit words (little-endian within each
/// word), so conflict detection and logging happen at word granularity —
/// exactly the property that made `memcpy`-heavy memcached transactions
/// expensive for buffered-update algorithms in the paper ("the need to
/// buffer byte-by-byte stores ... and then read them later as words
/// necessitated an expensive logging mechanism", §4).
///
/// # Examples
///
/// ```
/// use tm::{TBytes, TmRuntime, Transaction};
///
/// let rt = TmRuntime::default_runtime();
/// let buf = TBytes::zeroed(16);
/// rt.atomic(|tx| {
///     tx.write_byte(&buf, 3, b'x')?;
///     Ok(())
/// });
/// assert_eq!(buf.load_byte_direct(3), b'x');
/// ```
pub struct TBytes {
    words: Box<[TWord]>,
    len: usize,
}

impl TBytes {
    /// Creates a zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        let nwords = len.div_ceil(8);
        let words = (0..nwords).map(|_| TWord::new(0)).collect::<Vec<_>>();
        TBytes {
            words: words.into_boxed_slice(),
            len,
        }
    }

    /// Creates a buffer initialized from `src`.
    pub fn from_slice(src: &[u8]) -> Self {
        let b = TBytes::zeroed(src.len());
        b.store_slice_direct(0, src);
        b
    }

    /// Buffer length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing 64-bit words.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The backing word at index `wi`.
    ///
    /// # Panics
    ///
    /// Panics if `wi >= self.word_count()`.
    #[inline]
    pub fn word(&self, wi: usize) -> &TWord {
        &self.words[wi]
    }

    /// Splits a byte index into (word index, shift-in-bits).
    #[inline]
    pub(crate) fn locate(i: usize) -> (usize, u32) {
        (i / 8, (i % 8) as u32 * 8)
    }

    /// Non-transactional load of the backing word at `wi` (8 bytes,
    /// little-endian; padding bytes past `len()` are zero).
    ///
    /// # Panics
    ///
    /// Panics if `wi >= self.word_count()`.
    #[inline]
    pub fn load_word_direct(&self, wi: usize) -> u64 {
        self.words[wi].load_direct()
    }

    /// Non-transactional store of the backing word at `wi`. The caller
    /// owns every byte of the word, including padding past `len()` (which
    /// must be stored as zero).
    ///
    /// # Panics
    ///
    /// Panics if `wi >= self.word_count()`.
    #[inline]
    pub fn store_word_direct(&self, wi: usize, v: u64) {
        self.words[wi].store_direct(v);
    }

    /// Non-transactional byte load.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn load_byte_direct(&self, i: usize) -> u8 {
        assert!(i < self.len, "TBytes index {i} out of bounds ({})", self.len);
        let (wi, sh) = Self::locate(i);
        (self.words[wi].load_direct() >> sh) as u8
    }

    /// Non-transactional byte store.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn store_byte_direct(&self, i: usize, b: u8) {
        assert!(i < self.len, "TBytes index {i} out of bounds ({})", self.len);
        let (wi, sh) = Self::locate(i);
        let w = &self.words[wi].0;
        // Read-modify-write of the containing word. Non-transactional
        // callers are expected to hold a lock (baseline branches), so a
        // plain load/store pair is the memcached-faithful behavior; we use
        // a CAS loop anyway so direct mode is never the source of lost
        // updates in mixed tests.
        let mut cur = w.load(Ordering::Acquire);
        loop {
            let merged = (cur & !(0xffu64 << sh)) | ((b as u64) << sh);
            match w.compare_exchange_weak(cur, merged, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Non-transactional bulk copy out of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `offset + dst.len() > self.len()`.
    pub fn load_slice_direct(&self, offset: usize, dst: &mut [u8]) {
        assert!(
            offset.checked_add(dst.len()).is_some_and(|e| e <= self.len),
            "TBytes range {offset}..{} out of bounds ({})",
            offset + dst.len(),
            self.len
        );
        // Word-granular: one atomic load per 8 bytes, byte extraction at
        // the unaligned head/tail.
        let mut i = 0;
        while i < dst.len() {
            let (wi, sh) = Self::locate(offset + i);
            let first = (sh / 8) as usize;
            let n = (8 - first).min(dst.len() - i);
            let bytes = self.words[wi].load_direct().to_le_bytes();
            dst[i..i + n].copy_from_slice(&bytes[first..first + n]);
            i += n;
        }
    }

    /// Non-transactional bulk copy into the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len() > self.len()`.
    pub fn store_slice_direct(&self, offset: usize, src: &[u8]) {
        assert!(
            offset.checked_add(src.len()).is_some_and(|e| e <= self.len),
            "TBytes range {offset}..{} out of bounds ({})",
            offset + src.len(),
            self.len
        );
        // Whole covered words are stored blind (the caller owns every byte
        // of them); partial head/tail words go through the byte-merging
        // CAS path so neighboring bytes outside the range are preserved.
        let mut i = 0;
        while i < src.len() {
            let (wi, sh) = Self::locate(offset + i);
            let first = (sh / 8) as usize;
            let n = (8 - first).min(src.len() - i);
            if n == 8 {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&src[i..i + 8]);
                self.words[wi].store_direct(u64::from_le_bytes(bytes));
            } else {
                for k in 0..n {
                    self.store_byte_direct(offset + i + k, src[i + k]);
                }
            }
            i += n;
        }
    }

    /// Non-transactional snapshot of the whole buffer.
    pub fn to_vec_direct(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.len];
        self.load_slice_direct(0, &mut v);
        v
    }
}

impl fmt::Debug for TBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TBytes").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tword_direct_ops() {
        let w = TWord::new(5);
        assert_eq!(w.load_direct(), 5);
        w.store_direct(9);
        assert_eq!(w.load_direct(), 9);
        assert_eq!(w.fetch_add_direct(1), 9);
        assert_eq!(w.fetch_sub_direct(3), 10);
        assert_eq!(w.load_direct(), 7);
        assert_eq!(w.compare_exchange_direct(7, 0), Ok(7));
        assert_eq!(w.compare_exchange_direct(7, 1), Err(0));
    }

    #[test]
    fn tcell_typed_roundtrip() {
        let c = TCell::new(-42i32);
        assert_eq!(c.load_direct(), -42);
        c.store_direct(17);
        assert_eq!(c.load_direct(), 17);
    }

    #[test]
    fn tcell_default() {
        let c: TCell<u32> = TCell::default();
        assert_eq!(c.load_direct(), 0);
    }

    #[test]
    fn tbytes_byte_addressing() {
        let b = TBytes::zeroed(13);
        assert_eq!(b.len(), 13);
        assert_eq!(b.word_count(), 2);
        for i in 0..13 {
            b.store_byte_direct(i, i as u8 + 1);
        }
        for i in 0..13 {
            assert_eq!(b.load_byte_direct(i), i as u8 + 1);
        }
    }

    #[test]
    fn tbytes_from_slice_roundtrip() {
        let b = TBytes::from_slice(b"hello transactional world");
        assert_eq!(b.to_vec_direct(), b"hello transactional world");
    }

    #[test]
    fn tbytes_slice_window() {
        let b = TBytes::from_slice(b"0123456789");
        let mut mid = [0u8; 4];
        b.load_slice_direct(3, &mut mid);
        assert_eq!(&mid, b"3456");
        b.store_slice_direct(3, b"abcd");
        assert_eq!(b.to_vec_direct(), b"012abcd789");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tbytes_oob_load_panics() {
        TBytes::zeroed(4).load_byte_direct(4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tbytes_oob_slice_panics() {
        let mut d = [0u8; 3];
        TBytes::zeroed(4).load_slice_direct(2, &mut d);
    }

    #[test]
    fn tbytes_empty() {
        let b = TBytes::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.to_vec_direct(), Vec::<u8>::new());
    }
}
