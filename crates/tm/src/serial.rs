//! The global readers/writer *serial lock* and serial-irrevocable mode.
//!
//! GCC's TM runtime makes every transaction acquire a single global
//! readers/writer lock in read mode at begin, releasing it at commit or
//! abort; a transaction that must *serialize* (perform an unsafe operation,
//! or give up after repeated aborts) upgrades to write mode, draining every
//! in-flight transaction first. The paper identifies this lock as the
//! dominant scalability bottleneck once serialization is rare (§4, Fig. 10),
//! and removes it — reproduced here as [`SerialLockMode::None`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// Whether transactions take the global serial lock at begin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SerialLockMode {
    /// GCC default: every transaction holds the lock shared for its whole
    /// lifetime; serialization acquires it exclusively.
    #[default]
    ReaderWriter,
    /// Paper §4 ("NoLock"): the lock is removed entirely. Serialization is
    /// impossible; requesting it is a programming error (the program must
    /// contain no relaxed transactions).
    None,
}

const WRITER: u64 = 1 << 63;

/// A writer-preferring readers/writer spinlock with the contention profile
/// of GCC's `gtm_serial_lock`: one shared cache line touched by every
/// transaction begin/end.
#[derive(Default)]
pub struct SerialLock {
    /// Bit 63: writer held or pending. Low bits: active reader count.
    state: AtomicU64,
}

impl SerialLock {
    /// Creates an unheld lock.
    pub const fn new() -> Self {
        SerialLock {
            state: AtomicU64::new(0),
        }
    }

    /// Acquires the lock in read (shared) mode. Blocks while a writer holds
    /// or awaits the lock (writer preference prevents serializing
    /// transactions from starving).
    pub fn read_acquire(&self) {
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return;
            }
            backoff(&mut spins);
        }
    }

    /// Releases a read acquisition.
    pub fn read_release(&self) {
        let prev = self.state.fetch_sub(1, Ordering::AcqRel);
        debug_assert_ne!(prev & !WRITER, 0, "read_release without read_acquire");
    }

    /// Acquires the lock in write (exclusive) mode: claims the writer bit,
    /// then drains active readers.
    pub fn write_acquire(&self) {
        // Claim the writer bit, waiting out any current writer.
        let mut spins = 0u32;
        loop {
            let s = self.state.fetch_or(WRITER, Ordering::AcqRel);
            if s & WRITER == 0 {
                break;
            }
            backoff(&mut spins);
        }
        // Drain readers.
        let mut spins = 0u32;
        while self.state.load(Ordering::Acquire) & !WRITER != 0 {
            backoff(&mut spins);
        }
    }

    /// Releases a write acquisition.
    pub fn write_release(&self) {
        let prev = self.state.fetch_and(!WRITER, Ordering::AcqRel);
        debug_assert_ne!(prev & WRITER, 0, "write_release without write_acquire");
    }

    /// Returns `true` if a writer currently holds or awaits the lock.
    /// Diagnostic only; the answer may be stale immediately.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn writer_pending(&self) -> bool {
        self.state.load(Ordering::Acquire) & WRITER != 0
    }
}

impl fmt::Debug for SerialLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.load(Ordering::Relaxed);
        f.debug_struct("SerialLock")
            .field("writer", &(s & WRITER != 0))
            .field("readers", &(s & !WRITER))
            .finish()
    }
}

#[inline]
fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 32 {
        std::hint::spin_loop();
    } else {
        // Oversubscribed hosts (the common case for this reproduction) make
        // pure spinning pathological; yield to let the lock holder run.
        thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn read_read_share() {
        let l = SerialLock::new();
        l.read_acquire();
        l.read_acquire();
        l.read_release();
        l.read_release();
    }

    #[test]
    fn write_excludes_write() {
        let l = Arc::new(SerialLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..4 {
            let l = l.clone();
            let c = counter.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..200 {
                    l.write_acquire();
                    let v = c.load(Ordering::Relaxed);
                    thread::yield_now();
                    c.store(v + 1, Ordering::Relaxed);
                    l.write_release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn write_drains_readers() {
        let l = Arc::new(SerialLock::new());
        let in_read = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..3 {
            let l = l.clone();
            let r = in_read.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..500 {
                    l.read_acquire();
                    r.fetch_add(1, Ordering::SeqCst);
                    r.fetch_sub(1, Ordering::SeqCst);
                    l.read_release();
                }
            }));
        }
        for _ in 0..100 {
            l.write_acquire();
            assert_eq!(
                in_read.load(Ordering::SeqCst),
                0,
                "writer saw an active reader"
            );
            l.write_release();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn writer_pending_is_visible() {
        let l = SerialLock::new();
        assert!(!l.writer_pending());
        l.write_acquire();
        assert!(l.writer_pending());
        l.write_release();
        assert!(!l.writer_pending());
    }
}
