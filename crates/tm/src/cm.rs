//! Contention management policies (paper §4, Figure 11).
//!
//! The runtime consults the contention manager between attempts of a
//! transaction. Four policies from the paper are provided:
//!
//! * [`ContentionManager::SerializeAfter`] — GCC's default: after N
//!   consecutive aborts the transaction restarts in serial-irrevocable mode
//!   (requires the serial lock; counted as "Abort Serial" in Tables 1–4).
//! * [`ContentionManager::None`] — immediate retry ("GCC-NoCM").
//! * [`ContentionManager::Backoff`] — randomized exponential backoff.
//! * [`ContentionManager::Hourglass`] — after N consecutive aborts the
//!   starving transaction closes a global gate that blocks *new*
//!   transactions from beginning until it commits (Liu & Spear's "toxic
//!   transactions" / hourglass scheme).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Instant;

/// Which policy the runtime applies between transaction attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ContentionManager {
    /// Immediate retry, never serialize (paper: "GCC-NoCM").
    None,
    /// Serialize after this many consecutive aborts (GCC default: 100).
    SerializeAfter(u32),
    /// Randomized exponential backoff, capped at `max_shift` doublings.
    Backoff {
        /// log2 of the maximum backoff (in ~spin units).
        max_shift: u32,
    },
    /// Close the begin gate after this many consecutive aborts
    /// (paper configuration: 128).
    Hourglass(u32),
}

impl Default for ContentionManager {
    /// GCC's default policy.
    fn default() -> Self {
        ContentionManager::SerializeAfter(100)
    }
}

impl ContentionManager {
    /// GCC's default: serialize after 100 consecutive aborts.
    pub const GCC_DEFAULT: ContentionManager = ContentionManager::SerializeAfter(100);

    /// The paper's hourglass configuration (block new transactions after
    /// 128 consecutive aborts).
    pub const HOURGLASS_128: ContentionManager = ContentionManager::Hourglass(128);
}

impl ContentionManager {
    /// Packs the policy into the runtime's atomic config word (the live
    /// contention manager is swappable by
    /// [`crate::TmRuntime::switch_config`]): tag in the low byte, the
    /// policy parameter above it.
    pub(crate) fn encode(self) -> u64 {
        match self {
            ContentionManager::None => 0,
            ContentionManager::SerializeAfter(n) => 1 | ((n as u64) << 8),
            ContentionManager::Backoff { max_shift } => 2 | ((max_shift as u64) << 8),
            ContentionManager::Hourglass(n) => 3 | ((n as u64) << 8),
        }
    }

    pub(crate) fn decode(code: u64) -> ContentionManager {
        let param = (code >> 8) as u32;
        match code & 0xff {
            0 => ContentionManager::None,
            1 => ContentionManager::SerializeAfter(param),
            2 => ContentionManager::Backoff { max_shift: param },
            3 => ContentionManager::Hourglass(param),
            other => unreachable!("invalid contention-manager code {other}"),
        }
    }
}

impl fmt::Display for ContentionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentionManager::None => write!(f, "no-cm"),
            ContentionManager::SerializeAfter(n) => write!(f, "serialize-after-{n}"),
            ContentionManager::Backoff { max_shift } => write!(f, "backoff-{max_shift}"),
            ContentionManager::Hourglass(n) => write!(f, "hourglass-{n}"),
        }
    }
}

/// The hourglass gate: a single global slot naming the starving transaction
/// allowed to make progress while new transactions wait.
#[derive(Default)]
pub struct Hourglass {
    /// 0 = open; otherwise the tx id that closed the gate.
    holder: AtomicU64,
}

impl Hourglass {
    /// Creates an open gate.
    pub const fn new() -> Self {
        Hourglass {
            holder: AtomicU64::new(0),
        }
    }

    /// Blocks until the gate is open or held by `tx_id`, giving up at
    /// `deadline` (`None` = wait forever). Returns `false` on timeout.
    ///
    /// Waiters back off exponentially: a few doubling spin bursts, then a
    /// `thread::yield_now` floor — on a one-core host a closed gate must
    /// hand the core to the holder instead of burning it. The deadline is
    /// only consulted once the wait reaches the yield floor (`Instant::now`
    /// is too expensive for the first few spins, and a gate held that
    /// briefly is about to open anyway).
    pub fn wait_at_begin_until(&self, tx_id: u64, deadline: Option<Instant>) -> bool {
        let mut rounds = 0u32;
        loop {
            let h = self.holder.load(Ordering::Acquire);
            if h == 0 || h == tx_id {
                return true;
            }
            if rounds < 6 {
                for _ in 0..(1u32 << rounds) {
                    std::hint::spin_loop();
                }
            } else {
                thread::yield_now();
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return false;
                    }
                }
            }
            rounds = rounds.saturating_add(1);
        }
    }

    /// Attempts to close the gate for `tx_id`. Returns `true` if `tx_id`
    /// now holds it (including if it already did).
    pub fn try_close(&self, tx_id: u64) -> bool {
        debug_assert_ne!(tx_id, 0, "tx id 0 is reserved for the open gate");
        self.holder
            .compare_exchange(0, tx_id, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
            || self.holder.load(Ordering::Acquire) == tx_id
    }

    /// Opens the gate if held by `tx_id`.
    pub fn open_if_held(&self, tx_id: u64) {
        let _ = self
            .holder
            .compare_exchange(tx_id, 0, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Current holder (0 = open). Diagnostic only.
    pub fn holder(&self) -> u64 {
        self.holder.load(Ordering::Acquire)
    }
}

impl fmt::Debug for Hourglass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hourglass")
            .field("holder", &self.holder())
            .finish()
    }
}

/// Spins/yields for a randomized exponential backoff after `attempt`
/// consecutive aborts. `seed` decorrelates threads. A backoff never
/// outlives `deadline`: once it passes, the wait is cut short so the
/// caller can report [`crate::TxError::Timeout`] instead of sleeping
/// through it.
pub(crate) fn exponential_backoff(
    attempt: u32,
    max_shift: u32,
    seed: u64,
    deadline: Option<Instant>,
) {
    let shift = attempt.min(max_shift);
    // xorshift on (seed, attempt) for a cheap random fraction.
    let mut x = seed ^ ((attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let max = 1u64 << shift;
    let units = (x % max) + 1;
    for unit in 0..units {
        // One "unit" is a short spin; past a threshold we also yield so the
        // backoff behaves under preemption (the paper observes backoff
        // "performs poorly due to preemption" at high thread counts — the
        // yield is what a real spinning backoff degenerates to there).
        for _ in 0..16 {
            std::hint::spin_loop();
        }
        if units > 64 {
            thread::yield_now();
        }
        // Check the deadline only every few units: Instant::now() costs
        // more than the 16-spin unit itself.
        if unit % 32 == 31 {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_gcc_policy() {
        assert_eq!(
            ContentionManager::default(),
            ContentionManager::SerializeAfter(100)
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(ContentionManager::None.to_string(), "no-cm");
        assert_eq!(
            ContentionManager::SerializeAfter(100).to_string(),
            "serialize-after-100"
        );
        assert_eq!(
            ContentionManager::Backoff { max_shift: 10 }.to_string(),
            "backoff-10"
        );
        assert_eq!(
            ContentionManager::Hourglass(128).to_string(),
            "hourglass-128"
        );
    }

    #[test]
    fn hourglass_close_open() {
        let h = Hourglass::new();
        assert_eq!(h.holder(), 0);
        assert!(h.try_close(7));
        assert!(h.try_close(7), "idempotent for the holder");
        assert!(!h.try_close(8), "second closer must fail");
        h.open_if_held(8);
        assert_eq!(h.holder(), 7, "non-holder cannot open");
        h.open_if_held(7);
        assert_eq!(h.holder(), 0);
    }

    #[test]
    fn hourglass_holder_passes_gate() {
        let h = Hourglass::new();
        assert!(h.try_close(3));
        // Must not deadlock: the holder passes its own gate.
        assert!(h.wait_at_begin_until(3, None));
        h.open_if_held(3);
        assert!(h.wait_at_begin_until(4, None));
    }

    #[test]
    fn backoff_terminates() {
        for attempt in 0..12 {
            exponential_backoff(attempt, 8, 42, None);
        }
    }

    #[test]
    fn backoff_respects_deadline() {
        use std::time::Duration;
        let start = Instant::now();
        // A huge backoff (2^30 units) cut short by an already-expired
        // deadline must return in well under the full spin time.
        exponential_backoff(64, 30, 1, Some(start));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline-cut backoff still spun for {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn closed_gate_times_out() {
        use std::time::Duration;
        let h = Hourglass::new();
        assert!(h.try_close(9));
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(!h.wait_at_begin_until(10, Some(deadline)));
        assert!(h.wait_at_begin_until(9, Some(deadline)), "holder passes");
        h.open_if_held(9);
        assert!(h.wait_at_begin_until(10, Some(deadline)), "open gate passes");
    }
}
