//! Transactions: the [`Transaction`] trait and the [`AtomicTx`] /
//! [`RelaxedTx`] capability types.
//!
//! The Draft C++ TM Specification distinguishes `__transaction_atomic`
//! (statically checked to contain no unsafe operations) from
//! `__transaction_relaxed` (may perform I/O and other unsafe operations by
//! becoming serial-irrevocable). This crate models the static check with
//! the type system instead of a compiler pass:
//!
//! * [`AtomicTx`] exposes only transactional reads/writes and handler
//!   registration — there is no way to reach an unsafe operation, which is
//!   the paper's "performance model": an atomic transaction can never force
//!   serialization (other than by the contention policy).
//! * [`RelaxedTx`] additionally offers [`RelaxedTx::unsafe_op`], which
//!   upgrades the transaction to serial-irrevocable mode before running
//!   arbitrary side-effecting code — GCC's *in-flight switch*.
//!
//! A function annotated `transaction_safe` in the paper corresponds here to
//! a function generic over `T: Transaction<'env>`: it can be called from
//! either kind of transaction and cannot perform unsafe operations.

use crate::algo::Engine;
use crate::arena::Arena;
use crate::cell::{TBytes, TCell, TWord};
use crate::error::Abort;
use crate::runtime::RtInner;
use crate::serial::SerialLockMode;
use crate::word::Word;

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::AtomicTx<'_> {}
    impl Sealed for super::RelaxedTx<'_> {}
}

/// How a relaxed transaction is planned to begin — the runtime-visible
/// residue of the `transaction_callable` annotation story (§2, §3.3).
///
/// GCC starts a relaxed transaction in serial-irrevocable mode when every
/// code path through it performs an operation the compiler cannot prove
/// safe ("Start Serial" in Tables 1–4); otherwise the transaction starts
/// instrumented and switches in flight only if it actually reaches an
/// unsafe operation. Whether callees are annotated `callable` determines
/// which of the two applies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RelaxedPlan {
    /// Begin directly in serial-irrevocable mode.
    pub start_serial: bool,
}

impl RelaxedPlan {
    /// An instrumented start (unsafe operations, if any, are on branches).
    pub const fn new() -> Self {
        RelaxedPlan {
            start_serial: false,
        }
    }

    /// A serial start: every path is unsafe, or callees are unannotated
    /// and must be presumed unsafe.
    pub const fn serial() -> Self {
        RelaxedPlan { start_serial: true }
    }
}

/// Operations available inside any transaction (atomic or relaxed).
///
/// This trait is sealed; the only implementors are [`AtomicTx`] and
/// [`RelaxedTx`]. The `'env` lifetime ties every accessed location to the
/// environment the transaction closure borrows from, which is what makes
/// the runtime's internal address-based logging sound.
///
/// # Examples
///
/// A `transaction_safe` function — callable from both transaction kinds:
///
/// ```
/// use tm::{Abort, TCell, TmRuntime, Transaction};
///
/// fn bump<'env, T: Transaction<'env>>(
///     tx: &mut T,
///     c: &'env TCell<u64>,
/// ) -> Result<u64, Abort> {
///     let v = tx.read(c)? + 1;
///     tx.write(c, v)?;
///     Ok(v)
/// }
///
/// let rt = TmRuntime::default_runtime();
/// let c = TCell::new(0u64);
/// assert_eq!(rt.atomic(|tx| bump(tx, &c)), 1);
/// assert_eq!(rt.relaxed(Default::default(), |tx| bump(tx, &c)), 2);
/// ```
pub trait Transaction<'env>: sealed::Sealed {
    /// Transactionally reads one word.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if the location conflicts with a concurrent
    /// transaction; propagate it with `?`.
    fn read_word(&mut self, w: &'env TWord) -> Result<u64, Abort>;

    /// Transactionally writes one word.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict; propagate it with `?`.
    fn write_word(&mut self, w: &'env TWord, v: u64) -> Result<(), Abort>;

    /// Registers a handler to run after this transaction commits (after
    /// all runtime locks are released, matching GCC's `onCommit`).
    fn on_commit_boxed(&mut self, f: Box<dyn FnOnce() + 'env>);

    /// Registers a handler to run after this transaction's effects are
    /// undone by an abort, before it retries (GCC's `onAbort`).
    fn on_abort_boxed(&mut self, f: Box<dyn FnOnce() + 'env>);

    /// Typed read of a [`TCell`].
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    fn read<T: Word>(&mut self, c: &'env TCell<T>) -> Result<T, Abort>
    where
        Self: Sized,
    {
        Ok(T::from_word(self.read_word(c.word())?))
    }

    /// Typed write of a [`TCell`].
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    fn write<T: Word>(&mut self, c: &'env TCell<T>, v: T) -> Result<(), Abort>
    where
        Self: Sized,
    {
        self.write_word(c.word(), v.to_word())
    }

    /// Read-modify-write of a [`TCell`]; returns the previous value.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    fn modify<T: Word>(
        &mut self,
        c: &'env TCell<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<T, Abort>
    where
        Self: Sized,
    {
        let old = self.read(c)?;
        self.write(c, f(old))?;
        Ok(old)
    }

    /// Transactional counterpart of `fetch_add`; returns the previous
    /// value. This is what the paper's "Max" stage replaces memcached's
    /// `lock incr` reference counting with.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    fn fetch_add(&mut self, c: &'env TCell<u64>, delta: u64) -> Result<u64, Abort>
    where
        Self: Sized,
    {
        self.modify(c, |v| v.wrapping_add(delta))
    }

    /// Transactional counterpart of `fetch_sub`; returns the previous
    /// value.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    fn fetch_sub(&mut self, c: &'env TCell<u64>, delta: u64) -> Result<u64, Abort>
    where
        Self: Sized,
    {
        self.modify(c, |v| v.wrapping_sub(delta))
    }

    /// Transactionally reads one byte of a [`TBytes`].
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    fn read_byte(&mut self, b: &'env TBytes, i: usize) -> Result<u8, Abort>
    where
        Self: Sized,
    {
        assert!(i < b.len(), "TBytes index {i} out of bounds ({})", b.len());
        let (wi, sh) = TBytes::locate(i);
        Ok((self.read_word(b.word(wi))? >> sh) as u8)
    }

    /// Transactionally writes one byte of a [`TBytes`] (read-merge-write of
    /// the containing word — the byte-granularity logging cost the paper
    /// attributes to `memcpy` under buffered-update algorithms).
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    fn write_byte(&mut self, b: &'env TBytes, i: usize, v: u8) -> Result<(), Abort>
    where
        Self: Sized,
    {
        assert!(i < b.len(), "TBytes index {i} out of bounds ({})", b.len());
        let (wi, sh) = TBytes::locate(i);
        let w = self.read_word(b.word(wi))?;
        let merged = (w & !(0xffu64 << sh)) | ((v as u64) << sh);
        self.write_word(b.word(wi), merged)
    }

    /// Transactional bulk read from a [`TBytes`] window into `dst`.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `offset + dst.len() > b.len()`.
    fn read_bytes(&mut self, b: &'env TBytes, offset: usize, dst: &mut [u8]) -> Result<(), Abort>
    where
        Self: Sized,
    {
        assert!(
            offset.checked_add(dst.len()).is_some_and(|e| e <= b.len()),
            "TBytes range {offset}..{} out of bounds ({})",
            offset + dst.len(),
            b.len()
        );
        let mut i = 0;
        while i < dst.len() {
            let (wi, sh) = TBytes::locate(offset + i);
            let first = (sh / 8) as usize;
            let n = (8 - first).min(dst.len() - i);
            let bytes = self.read_word(b.word(wi))?.to_le_bytes();
            dst[i..i + n].copy_from_slice(&bytes[first..first + n]);
            i += n;
        }
        Ok(())
    }

    /// Transactional bulk write into a [`TBytes`] window. Whole covered
    /// words are written blind; partial edge words are read-merged.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len() > b.len()`.
    fn write_bytes(&mut self, b: &'env TBytes, offset: usize, src: &[u8]) -> Result<(), Abort>
    where
        Self: Sized,
    {
        assert!(
            offset.checked_add(src.len()).is_some_and(|e| e <= b.len()),
            "TBytes range {offset}..{} out of bounds ({})",
            offset + src.len(),
            b.len()
        );
        let mut i = 0;
        while i < src.len() {
            let (wi, sh) = TBytes::locate(offset + i);
            let first = (sh / 8) as usize;
            let n = (8 - first).min(src.len() - i);
            let mut bytes = if n == 8 {
                [0u8; 8]
            } else {
                self.read_word(b.word(wi))?.to_le_bytes()
            };
            bytes[first..first + n].copy_from_slice(&src[i..i + n]);
            self.write_word(b.word(wi), u64::from_le_bytes(bytes))?;
            i += n;
        }
        Ok(())
    }

    /// Transactionally reads whole backing words of a [`TBytes`] —
    /// one orec/log entry per 8 bytes. This is the bulk primitive
    /// `tmstd`'s word-granular `memcpy`/`strlen`/`memcmp` rewrites sit on;
    /// padding bytes of the final word (past `len()`) read as zero.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `wi + dst.len() > b.word_count()`.
    fn read_words(&mut self, b: &'env TBytes, wi: usize, dst: &mut [u64]) -> Result<(), Abort>
    where
        Self: Sized,
    {
        assert!(
            wi.checked_add(dst.len()).is_some_and(|e| e <= b.word_count()),
            "TBytes word range {wi}..{} out of bounds ({} words)",
            wi + dst.len(),
            b.word_count()
        );
        for (k, d) in dst.iter_mut().enumerate() {
            *d = self.read_word(b.word(wi + k))?;
        }
        Ok(())
    }

    /// Transactionally writes whole backing words of a [`TBytes`] — one
    /// orec/log entry per 8 bytes, no read-merge. The caller owns every
    /// byte of the covered words, including any padding past `len()`
    /// (which must be written as zero to preserve the invariant that
    /// padding reads as zero).
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `wi + src.len() > b.word_count()`.
    fn write_words(&mut self, b: &'env TBytes, wi: usize, src: &[u64]) -> Result<(), Abort>
    where
        Self: Sized,
    {
        assert!(
            wi.checked_add(src.len()).is_some_and(|e| e <= b.word_count()),
            "TBytes word range {wi}..{} out of bounds ({} words)",
            wi + src.len(),
            b.word_count()
        );
        for (k, &v) in src.iter().enumerate() {
            self.write_word(b.word(wi + k), v)?;
        }
        Ok(())
    }

    /// Transactional bulk copy of `src` into a [`TBytes`] window: the
    /// word-granular counterpart of a `memcpy` from private memory. Whole
    /// covered words cost one log entry each (written blind); the partial
    /// head/tail words, if any, are read-merged at byte granularity.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len() > b.len()`.
    fn copy_from_slice(&mut self, b: &'env TBytes, offset: usize, src: &[u8]) -> Result<(), Abort>
    where
        Self: Sized,
    {
        self.write_bytes(b, offset, src)
    }

    /// Reads an entire [`TBytes`] buffer into a fresh `Vec`.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict.
    fn read_bytes_vec(&mut self, b: &'env TBytes) -> Result<Vec<u8>, Abort>
    where
        Self: Sized,
    {
        let mut v = vec![0u8; b.len()];
        self.read_bytes(b, 0, &mut v)?;
        Ok(v)
    }

    /// Convenience wrapper over [`Transaction::on_commit_boxed`].
    fn on_commit(&mut self, f: impl FnOnce() + 'env)
    where
        Self: Sized,
    {
        self.on_commit_boxed(Box::new(f));
    }

    /// Convenience wrapper over [`Transaction::on_abort_boxed`].
    fn on_abort(&mut self, f: impl FnOnce() + 'env)
    where
        Self: Sized,
    {
        self.on_abort_boxed(Box::new(f));
    }
}

/// Shared state of one transaction attempt. The log buffers (and the
/// backing storage of the handler vectors) live in `arena`, the thread's
/// reusable allocation pool; `run_loop` threads it through every attempt
/// and returns it to the thread-local cache when the transaction finishes.
pub(crate) struct TxInner<'env> {
    pub(crate) rt: &'env RtInner,
    pub(crate) id: u64,
    pub(crate) engine: Engine,
    pub(crate) arena: Box<Arena>,
    pub(crate) irrevocable: bool,
    /// Read-only fast lane: the attempt was opened through `atomic_ro` /
    /// `relaxed_ro` and has not written yet. While set, no orec is ever
    /// acquired and no undo/redo entry exists; the first write clears it
    /// (in-flight promotion to a full read-write transaction).
    pub(crate) ro: bool,
    pub(crate) holds_read: bool,
    pub(crate) holds_write: bool,
    pub(crate) commit_handlers: Vec<Box<dyn FnOnce() + 'env>>,
    pub(crate) abort_handlers: Vec<Box<dyn FnOnce() + 'env>>,
}

impl<'env> TxInner<'env> {
    #[inline]
    pub(crate) fn read_word(&mut self, w: &'env TWord) -> Result<u64, Abort> {
        self.engine.read_word(self.rt, &mut self.arena.logs, w.addr())
    }

    #[inline]
    pub(crate) fn write_word(&mut self, w: &'env TWord, v: u64) -> Result<(), Abort> {
        if self.ro {
            // In-flight promotion: from here on this attempt is a full
            // read-write transaction. The read set gathered so far stays
            // valid (it is the same invisible-read log either way), so
            // promotion costs exactly one branch plus a stat.
            self.ro = false;
            self.rt.stats.bump(&self.rt.stats.ro_promotions);
        }
        self.engine.write_word(self.rt, &mut self.arena.logs, w.addr(), v)
    }

    /// GCC's in-flight switch to serial-irrevocable mode.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if the switch-time validation fails; the attempt
    /// must then abort and retry.
    ///
    /// # Panics
    ///
    /// Panics if the runtime was built with [`SerialLockMode::None`]: with
    /// the serial lock removed (paper §4), serialization is impossible and
    /// requesting it is a programming error.
    pub(crate) fn become_irrevocable(&mut self) -> Result<(), Abort> {
        if self.irrevocable {
            return Ok(());
        }
        match self.rt.serial_mode {
            SerialLockMode::None => panic!(
                "serialization requested but the serial lock was removed \
                 (SerialLockMode::None): a NoLock runtime must contain no \
                 relaxed transactions that reach unsafe operations"
            ),
            SerialLockMode::ReaderWriter => {
                // Leaving the fast lane without a data write: serial mode
                // runs uninstrumented and may do anything, so the RO
                // invariants no longer hold. Not counted as a promotion —
                // `in_flight_switch` already records this transition.
                self.ro = false;
                if self.holds_read {
                    self.rt.serial.read_release();
                    self.holds_read = false;
                }
                self.rt.serial.write_acquire();
                match self.engine.make_irrevocable(self.rt, &mut self.arena.logs) {
                    Ok(()) => {
                        self.holds_write = true;
                        self.irrevocable = true;
                        self.rt.stats.bump(&self.rt.stats.in_flight_switch);
                        Ok(())
                    }
                    Err(e) => {
                        self.rt.serial.write_release();
                        self.rt.stats.bump(&self.rt.stats.failed_switches);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Releases whichever side of the serial lock this attempt holds.
    pub(crate) fn release_serial(&mut self) {
        if self.holds_write {
            self.rt.serial.write_release();
            self.holds_write = false;
        } else if self.holds_read {
            self.rt.serial.read_release();
            self.holds_read = false;
        }
    }
}

impl std::fmt::Debug for TxInner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxInner")
            .field("id", &self.id)
            .field("irrevocable", &self.irrevocable)
            .finish_non_exhaustive()
    }
}

macro_rules! impl_transaction {
    ($ty:ident) => {
        impl<'env> Transaction<'env> for $ty<'env> {
            #[inline]
            fn read_word(&mut self, w: &'env TWord) -> Result<u64, Abort> {
                self.0.read_word(w)
            }
            #[inline]
            fn write_word(&mut self, w: &'env TWord, v: u64) -> Result<(), Abort> {
                self.0.write_word(w, v)
            }
            fn on_commit_boxed(&mut self, f: Box<dyn FnOnce() + 'env>) {
                self.0.commit_handlers.push(f);
            }
            fn on_abort_boxed(&mut self, f: Box<dyn FnOnce() + 'env>) {
                self.0.abort_handlers.push(f);
            }
        }
    };
}

/// A `__transaction_atomic` body: statically unable to perform unsafe
/// operations, and therefore guaranteed never to force serialization
/// (beyond the contention policy) — the paper's "performance model".
// INVARIANT: repr(transparent) over TxInner — the attempt loop in
// runtime.rs reinterprets &mut TxInner as &mut AtomicTx (wrap_mut) so it
// keeps ownership of the transaction state across catch_unwind and can
// tear it down after a panic.
#[derive(Debug)]
#[repr(transparent)]
pub struct AtomicTx<'env>(pub(crate) TxInner<'env>);

/// A `__transaction_relaxed` body: may call [`RelaxedTx::unsafe_op`], which
/// serializes the transaction (GCC's in-flight switch) before running
/// arbitrary code.
// INVARIANT: repr(transparent) over TxInner — see AtomicTx.
#[derive(Debug)]
#[repr(transparent)]
pub struct RelaxedTx<'env>(pub(crate) TxInner<'env>);

impl_transaction!(AtomicTx);
impl_transaction!(RelaxedTx);

impl<'env> AtomicTx<'env> {
    /// Reinterprets a `&mut TxInner` as a `&mut AtomicTx` for the body
    /// closure while `run_loop` retains ownership of the `TxInner`.
    #[inline]
    pub(crate) fn wrap_mut<'a>(inner: &'a mut TxInner<'env>) -> &'a mut AtomicTx<'env> {
        // SAFETY: AtomicTx is repr(transparent) over TxInner, so the
        // layouts are identical and the lifetimes are carried unchanged.
        unsafe { &mut *(inner as *mut TxInner<'env> as *mut AtomicTx<'env>) }
    }
}

impl<'env> RelaxedTx<'env> {
    /// Reinterprets a `&mut TxInner` as a `&mut RelaxedTx`; see
    /// [`AtomicTx::wrap_mut`].
    #[inline]
    pub(crate) fn wrap_mut<'a>(inner: &'a mut TxInner<'env>) -> &'a mut RelaxedTx<'env> {
        // SAFETY: RelaxedTx is repr(transparent) over TxInner.
        unsafe { &mut *(inner as *mut TxInner<'env> as *mut RelaxedTx<'env>) }
    }
}

impl<'env> RelaxedTx<'env> {
    /// Performs an *unsafe operation* — I/O, a volatile/atomic access, a
    /// call into uninstrumented code. If the transaction is not already
    /// irrevocable it first switches to serial-irrevocable mode, draining
    /// all concurrent transactions (the scalability hazard the paper
    /// quantifies).
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if switch-time validation fails (the attempt
    /// retries; `f` is *not* run).
    ///
    /// # Panics
    ///
    /// Panics on a runtime built with [`SerialLockMode::None`].
    pub fn unsafe_op<R>(&mut self, f: impl FnOnce() -> R) -> Result<R, Abort> {
        self.0.become_irrevocable()?;
        Ok(f())
    }

    /// Whether this transaction is already serial-irrevocable.
    pub fn is_irrevocable(&self) -> bool {
        self.0.irrevocable
    }

    /// Whether this attempt is still in the read-only fast lane (started
    /// via [`crate::TmRuntime::relaxed_ro`] and neither written nor gone
    /// irrevocable yet).
    pub fn is_fast_lane(&self) -> bool {
        self.0.ro
    }
}

impl<'env> AtomicTx<'env> {
    /// Whether this transaction is running serially (only possible via the
    /// contention policy, never via unsafe operations).
    pub fn is_serial(&self) -> bool {
        self.0.irrevocable
    }

    /// Whether this attempt is still in the read-only fast lane (started
    /// via [`crate::TmRuntime::atomic_ro`] and not yet promoted by a
    /// write).
    pub fn is_fast_lane(&self) -> bool {
        self.0.ro
    }
}
