//! Per-thread, retry-reusable log arenas.
//!
//! Before this module existed, every transaction *attempt* allocated fresh
//! `Vec` read/write logs plus a `std::collections::HashMap` write-map, and
//! dropped them on commit or abort — so the hot path paid the allocator and
//! SipHash on every attempt, drowning the algorithmic differences the
//! paper's §4 measures (the redo-log tax of Lazy/NOrec on `memcpy`-heavy
//! transactions) in constant-factor noise.
//!
//! The arena fixes the constant factor without touching semantics:
//!
//! * [`LogBufs`] owns every per-attempt log (read set, redo log, held-lock
//!   list, undo log) plus the [`WriteMap`]. Buffers are **cleared, never
//!   freed** between attempts, and returned to a thread-local slot between
//!   transactions, so a steady-state transaction performs zero heap
//!   allocations.
//! * [`WriteMap`] replaces the `HashMap<usize, usize>` redo-log index: an
//!   open-addressed, linear-probing table over a power-of-two slab, with
//!   generation-stamped slots (clearing is a counter bump, not a memset).
//!   Transactions with at most [`SMALL_WRITES`] distinct writes — the tiny
//!   IP lock-acquire transactions that dominate the paper's Table 1 — never
//!   touch the table at all: the redo log itself is scanned inline.
//! * `onCommit`/`onAbort` handler vectors keep their backing storage across
//!   retries *and* across transactions (the `'env`-erased allocation is
//!   cached while empty; see [`Arena::take_handler_vec`]).

use std::cell::Cell;
use std::fmt;

/// Write-set size up to which the redo log is scanned inline instead of
/// consulting the [`WriteMap`]. Eight entries cover the paper's small
/// transactions (item-lock acquire/release touches 1–2 words) while a
/// linear scan still fits in a couple of cache lines.
pub(crate) const SMALL_WRITES: usize = 8;

/// Read-set size up to which the read log is scanned inline for the
/// duplicate-read check, mirroring [`SMALL_WRITES`].
pub(crate) const SMALL_READS: usize = 8;

/// One slot of the open-addressed write-map. `gen` stamps liveness: a slot
/// whose generation differs from the table's is vacant, which makes
/// clearing O(1).
#[derive(Clone, Copy, Default)]
struct Slot {
    gen: u32,
    idx: u32,
    addr: usize,
}

/// Open-addressed `word address -> redo-log index` map: linear probing over
/// a power-of-two slab, generation-stamped clearing, grow-on-spill.
pub(crate) struct WriteMap {
    slots: Box<[Slot]>,
    mask: usize,
    len: usize,
    gen: u32,
}

impl Default for WriteMap {
    fn default() -> Self {
        WriteMap::new()
    }
}

impl WriteMap {
    const INITIAL_SLOTS: usize = 64;

    pub(crate) fn new() -> Self {
        WriteMap {
            slots: Box::default(),
            mask: 0,
            len: 0,
            gen: 1,
        }
    }

    /// Fibonacci hash over the raw key, high bits folded into the probe
    /// start. The key is a word address for the write map and NOrec's read
    /// map but an **orec index** for eager/lazy read maps — so no
    /// alignment pre-shift here: stripping low bits would collapse eight
    /// consecutive orec indices into one probe cluster, and the multiply
    /// mixes zeroed alignment bits fine on its own.
    #[inline]
    fn probe_start(&self, addr: usize) -> usize {
        let h = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 24) & self.mask
    }

    /// Looks up the redo-log index recorded for `addr`.
    #[inline]
    pub(crate) fn get(&self, addr: usize) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = self.probe_start(addr);
        loop {
            let s = self.slots[i];
            if s.gen != self.gen {
                return None;
            }
            if s.addr == addr {
                return Some(s.idx as usize);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Records `addr -> idx`. The caller must have checked `addr` is absent
    /// (the redo log keeps one entry per address).
    pub(crate) fn insert(&mut self, addr: usize, idx: usize) {
        if self.len + 1 > self.slots.len() / 4 * 3 {
            self.grow();
        }
        let mut i = self.probe_start(addr);
        loop {
            let s = &mut self.slots[i];
            if s.gen != self.gen {
                *s = Slot {
                    gen: self.gen,
                    idx: idx as u32,
                    addr,
                };
                self.len += 1;
                return;
            }
            debug_assert_ne!(s.addr, addr, "WriteMap::insert of a present address");
            i = (i + 1) & self.mask;
        }
    }

    /// Single-probe lookup-or-insert: returns the index already recorded
    /// for `addr`, or records `addr -> idx` in the vacant slot the probe
    /// ended on and returns `None`. One probe sequence where a
    /// [`WriteMap::get`] miss followed by [`WriteMap::insert`] would pay
    /// two — the spilled read path does this once per read.
    #[inline]
    pub(crate) fn get_or_insert(&mut self, addr: usize, idx: usize) -> Option<usize> {
        if self.len + 1 > self.slots.len() / 4 * 3 {
            self.grow();
        }
        let mut i = self.probe_start(addr);
        loop {
            let s = &mut self.slots[i];
            if s.gen != self.gen {
                *s = Slot {
                    gen: self.gen,
                    idx: idx as u32,
                    addr,
                };
                self.len += 1;
                return None;
            }
            if s.addr == addr {
                return Some(s.idx as usize);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Populates the table from a deduplicated redo log (the spill path
    /// when a transaction outgrows the inline small-write scan).
    pub(crate) fn rebuild(&mut self, writes: &[(usize, u64)]) {
        self.clear();
        for (idx, &(addr, _)) in writes.iter().enumerate() {
            self.insert(addr, idx);
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(Self::INITIAL_SLOTS);
        let old = std::mem::replace(
            &mut self.slots,
            vec![Slot::default(); new_cap].into_boxed_slice(),
        );
        let old_gen = self.gen;
        self.mask = new_cap - 1;
        self.gen = 1;
        self.len = 0;
        for s in old.iter().filter(|s| s.gen == old_gen) {
            self.insert(s.addr, s.idx as usize);
        }
    }

    /// Empties the table in O(1) by bumping the generation stamp.
    pub(crate) fn clear(&mut self) {
        self.len = 0;
        if self.gen == u32::MAX {
            self.slots.iter_mut().for_each(|s| *s = Slot::default());
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    /// Number of live entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

impl fmt::Debug for WriteMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriteMap")
            .field("len", &self.len)
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// The per-attempt log buffers, shared by all three engines. Which fields
/// an engine uses (and what the `u64` payload means) differs per
/// algorithm; the arena only cares that all of them are `(usize, u64)`
/// pairs whose storage is worth keeping.
#[derive(Debug, Default)]
pub(crate) struct LogBufs {
    /// Read set: eager/lazy record `(orec index, observed OrecValue)`,
    /// NOrec records `(word address, value read)`.
    pub(crate) reads: Vec<(usize, u64)>,
    /// Redo log in program order, one entry per distinct address:
    /// `(word address, buffered value)`. Unused by eager.
    pub(crate) writes: Vec<(usize, u64)>,
    /// Eager: orec locks held `(orec index, pre-lock value)`. Lazy: the
    /// commit-time held-lock scratch list. Unused by NOrec.
    pub(crate) locks: Vec<(usize, u64)>,
    /// Eager's undo log `(word address, previous value)`. Unused by the
    /// buffered engines.
    pub(crate) undo: Vec<(usize, u64)>,
    /// Redo-log index for [`LogBufs::writes`] past the inline window.
    pub(crate) wmap: WriteMap,
    /// Read-set index for [`LogBufs::reads`] past the inline window, keyed
    /// the same way as the read log (orec index or word address).
    pub(crate) rmap: WriteMap,
    /// Duplicate reads absorbed by the read-set index this attempt; flushed
    /// into `TmStats::read_log_dedup_hits` when the attempt ends.
    pub(crate) dedup_hits: u64,
    /// Successful snapshot extensions this attempt; flushed into
    /// `TmStats::snapshot_extensions` when the attempt ends.
    pub(crate) extensions: u64,
    /// Writes elided because the location already held the written value;
    /// flushed into `TmStats::silent_store_elisions` when the attempt ends.
    pub(crate) silent_elisions: u64,
    /// Commits that took the conflict-free snapshot+1 clock CAS and skipped
    /// validation; flushed into `TmStats::clock_tick_elisions`.
    pub(crate) clock_elisions: u64,
    /// Commit-time clock CASes lost to a concurrent committer; flushed into
    /// `TmStats::clock_cas_retries`.
    pub(crate) clock_retries: u64,
    /// Full cross-shard clock synchronizations (paid on the snapshot
    /// extension path only); flushed into `TmStats::clock_shard_syncs`.
    pub(crate) shard_syncs: u64,
    /// NOrec commits whose write set matched memory and skipped the
    /// sequence-lock bump; flushed into `TmStats::seqlock_bump_elisions`.
    pub(crate) seqlock_elisions: u64,
    /// High-watermark log sizes observed on this thread, updated as each
    /// attempt's logs are cleared. [`LogBufs::prewarm`] reserves to these
    /// marks up front, so a workload's steady-state transaction shape never
    /// reallocates mid-attempt — the mutation fast lane's "pre-sized
    /// redo/undo reservation" hints.
    peak_reads: usize,
    peak_writes: usize,
    peak_undo: usize,
}

/// The per-attempt stat tallies [`LogBufs`] accumulates and the runtime
/// flushes into the shared [`crate::TmStats`] counters once per attempt.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct OpTallies {
    pub(crate) dedup_hits: u64,
    pub(crate) extensions: u64,
    pub(crate) silent_elisions: u64,
    pub(crate) clock_elisions: u64,
    pub(crate) clock_retries: u64,
    pub(crate) shard_syncs: u64,
    pub(crate) seqlock_elisions: u64,
}

impl LogBufs {
    /// Clears every log, keeping all backing storage. The per-attempt stat
    /// tallies survive (they are flushed by the runtime, which needs them
    /// *after* the engine's commit/rollback has cleared the logs); the
    /// high-watermark size hints are refreshed here, where the attempt's
    /// final log sizes are still visible.
    pub(crate) fn clear(&mut self) {
        self.peak_reads = self.peak_reads.max(self.reads.len());
        self.peak_writes = self.peak_writes.max(self.writes.len());
        self.peak_undo = self.peak_undo.max(self.undo.len());
        self.reads.clear();
        self.writes.clear();
        self.locks.clear();
        self.undo.clear();
        self.wmap.clear();
        self.rmap.clear();
    }

    /// Reserves log capacity up to the high-watermarks recorded by previous
    /// attempts on this thread. A no-op at steady state (cleared vectors
    /// keep their capacity); after a fresh arena or a workload shape change
    /// it front-loads the growth so no log reallocates mid-attempt.
    pub(crate) fn prewarm(&mut self) {
        if self.reads.capacity() < self.peak_reads {
            self.reads.reserve(self.peak_reads - self.reads.len());
        }
        if self.writes.capacity() < self.peak_writes {
            self.writes.reserve(self.peak_writes - self.writes.len());
            // A redo log past the inline window will index itself; size the
            // map for the expected spill instead of growing it in-flight.
            self.locks.reserve(self.peak_writes.saturating_sub(self.locks.len()));
        }
        if self.undo.capacity() < self.peak_undo {
            self.undo.reserve(self.peak_undo - self.undo.len());
        }
    }

    /// Takes and resets the per-attempt stat tallies.
    #[inline]
    pub(crate) fn take_op_tallies(&mut self) -> OpTallies {
        let t = OpTallies {
            dedup_hits: self.dedup_hits,
            extensions: self.extensions,
            silent_elisions: self.silent_elisions,
            clock_elisions: self.clock_elisions,
            clock_retries: self.clock_retries,
            shard_syncs: self.shard_syncs,
            seqlock_elisions: self.seqlock_elisions,
        };
        self.dedup_hits = 0;
        self.extensions = 0;
        self.silent_elisions = 0;
        self.clock_elisions = 0;
        self.clock_retries = 0;
        self.shard_syncs = 0;
        self.seqlock_elisions = 0;
        t
    }

    /// Duplicate-check-and-append in one pass: returns `Some(slot)` when
    /// the read log already holds `key` (orec index for eager/lazy, word
    /// address for NOrec — the caller refreshes the logged observation),
    /// otherwise appends `key -> v` and returns `None`. Reads at most
    /// [`SMALL_READS`] scan the log inline and never build the index; past
    /// the window the index is probed exactly once per read, where a
    /// lookup-miss-then-insert pair would pay two probe walks.
    #[inline]
    pub(crate) fn read_slot_or_append(&mut self, key: usize, v: u64) -> Option<usize> {
        if self.reads.len() <= SMALL_READS {
            if let Some(slot) = self.reads.iter().position(|&(k, _)| k == key) {
                return Some(slot);
            }
            if self.reads.len() == SMALL_READS {
                // Spilling past the inline window: index everything so far.
                self.rmap.rebuild(&self.reads);
                self.rmap.insert(key, self.reads.len());
            }
            self.reads.push((key, v));
            None
        } else {
            match self.rmap.get_or_insert(key, self.reads.len()) {
                Some(slot) => Some(slot),
                None => {
                    self.reads.push((key, v));
                    None
                }
            }
        }
    }

    /// Looks up the buffered value for `addr` in the redo log.
    ///
    /// Small-write fast path: transactions with at most [`SMALL_WRITES`]
    /// distinct writes scan the log inline and never build the map.
    #[inline]
    pub(crate) fn redo_lookup(&self, addr: usize) -> Option<u64> {
        if self.writes.len() <= SMALL_WRITES {
            self.writes
                .iter()
                .find(|&&(a, _)| a == addr)
                .map(|&(_, v)| v)
        } else {
            self.wmap.get(addr).map(|i| self.writes[i].1)
        }
    }

    /// Buffers `addr -> v`, overwriting an existing entry for the same
    /// address (the redo log holds one entry per address, so `writes.len()`
    /// *is* the deduplicated write-set size).
    #[inline]
    pub(crate) fn redo_record(&mut self, addr: usize, v: u64) {
        if self.writes.len() <= SMALL_WRITES {
            if let Some(e) = self.writes.iter_mut().find(|e| e.0 == addr) {
                e.1 = v;
                return;
            }
            self.writes.push((addr, v));
            if self.writes.len() == SMALL_WRITES + 1 {
                // Spilled past the inline window: index everything so far.
                self.wmap.rebuild(&self.writes);
            }
        } else {
            match self.wmap.get(addr) {
                Some(i) => self.writes[i].1 = v,
                None => {
                    self.wmap.insert(addr, self.writes.len());
                    self.writes.push((addr, v));
                }
            }
        }
    }
}

/// A type-erased (empty) handler vector: only the allocation is reused,
/// never any `'env` contents.
type HandlerVec = Vec<Box<dyn FnOnce()>>;

/// The per-thread transaction arena: log buffers plus the cached backing
/// storage of the `onCommit`/`onAbort` handler vectors.
pub(crate) struct Arena {
    pub(crate) logs: LogBufs,
    commit_handlers: HandlerVec,
    abort_handlers: HandlerVec,
}

impl Default for Arena {
    fn default() -> Self {
        Arena {
            logs: LogBufs::default(),
            commit_handlers: Vec::new(),
            abort_handlers: Vec::new(),
        }
    }
}

impl fmt::Debug for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena").field("logs", &self.logs).finish_non_exhaustive()
    }
}

thread_local! {
    /// One cached arena per thread. `Cell<Option<..>>` rather than
    /// `RefCell` so a transaction started from inside an `onCommit`
    /// handler (or any other reentrancy) simply sees an empty slot and
    /// allocates fresh buffers instead of panicking.
    static ARENA: Cell<Option<Box<Arena>>> = const { Cell::new(None) };
}

/// Re-lifetimes an empty handler vector. Sound because the vector holds no
/// elements: only the raw allocation (pointer + capacity) is carried
/// across, and `Box<dyn FnOnce() + 'a>` has the same layout for every
/// `'a`.
fn relifetime<'from, 'to>(mut v: Vec<Box<dyn FnOnce() + 'from>>) -> Vec<Box<dyn FnOnce() + 'to>> {
    v.clear();
    let cap = v.capacity();
    let ptr = v.as_mut_ptr();
    std::mem::forget(v);
    // SAFETY: len is 0, so no element is ever read at the new lifetime;
    // ptr/cap describe the same allocation with an identical element
    // layout (lifetimes do not affect layout).
    unsafe { Vec::from_raw_parts(ptr.cast::<Box<dyn FnOnce() + 'to>>(), 0, cap) }
}

impl Arena {
    /// Takes this thread's cached arena, or a fresh one if none is cached
    /// (first transaction on the thread, or a reentrant transaction). The
    /// logs come back pre-reserved to this thread's high-watermark hints.
    pub(crate) fn take() -> Box<Arena> {
        let mut a = ARENA.with(|slot| slot.take()).unwrap_or_default();
        a.logs.prewarm();
        a
    }

    /// Borrows the cached `onCommit` handler storage at the transaction's
    /// environment lifetime. Must be paired with [`Arena::release`].
    pub(crate) fn take_handler_vecs<'env>(
        &mut self,
    ) -> (
        Vec<Box<dyn FnOnce() + 'env>>,
        Vec<Box<dyn FnOnce() + 'env>>,
    ) {
        (
            relifetime(std::mem::take(&mut self.commit_handlers)),
            relifetime(std::mem::take(&mut self.abort_handlers)),
        )
    }

    /// Returns an arena (plus the handler vectors borrowed from it) to the
    /// thread-local cache, clearing everything but keeping all storage.
    /// The handler vectors must already be empty (drained by commit or
    /// abort); any stragglers are dropped here before the lifetime is
    /// erased.
    pub(crate) fn release<'env>(
        mut self: Box<Self>,
        commit_handlers: Vec<Box<dyn FnOnce() + 'env>>,
        abort_handlers: Vec<Box<dyn FnOnce() + 'env>>,
    ) {
        debug_assert!(commit_handlers.is_empty() && abort_handlers.is_empty());
        self.commit_handlers = relifetime(commit_handlers);
        self.abort_handlers = relifetime(abort_handlers);
        self.logs.clear();
        ARENA.with(|slot| {
            // Keep at most one cached arena per thread; if a reentrant
            // transaction already refilled the slot, drop this one.
            if slot.take().is_none() {
                slot.set(Some(self));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writemap_insert_get_roundtrip() {
        let mut m = WriteMap::new();
        for i in 0..200usize {
            m.insert(0x1000 + i * 8, i);
        }
        assert_eq!(m.len(), 200);
        for i in 0..200usize {
            assert_eq!(m.get(0x1000 + i * 8), Some(i));
        }
        assert_eq!(m.get(0x1000 + 200 * 8), None);
    }

    #[test]
    fn writemap_clear_is_generation_bump() {
        let mut m = WriteMap::new();
        m.insert(0x2000, 0);
        let slots_before = m.slots.len();
        m.clear();
        assert_eq!(m.get(0x2000), None);
        assert_eq!(m.len(), 0);
        assert_eq!(m.slots.len(), slots_before, "clear must not free the slab");
        m.insert(0x2000, 7);
        assert_eq!(m.get(0x2000), Some(7));
    }

    #[test]
    fn writemap_survives_generation_wraparound() {
        let mut m = WriteMap::new();
        m.insert(0x3000, 1);
        m.gen = u32::MAX - 1;
        m.clear(); // -> MAX
        m.insert(0x3000, 2);
        assert_eq!(m.get(0x3000), Some(2));
        m.clear(); // wraps: full rezero
        assert_eq!(m.gen, 1);
        assert_eq!(m.get(0x3000), None);
        m.insert(0x3000, 3);
        assert_eq!(m.get(0x3000), Some(3));
    }

    #[test]
    fn redo_log_stays_deduplicated_across_the_spill() {
        let mut b = LogBufs::default();
        // Fill the inline window, overwriting one address repeatedly.
        for i in 0..SMALL_WRITES {
            b.redo_record(0x4000 + i * 8, i as u64);
            b.redo_record(0x4000, 100 + i as u64);
        }
        assert_eq!(b.writes.len(), SMALL_WRITES, "overwrites must not grow the log");
        // Spill well past the window.
        for i in SMALL_WRITES..100 {
            b.redo_record(0x4000 + i * 8, i as u64);
        }
        assert_eq!(b.writes.len(), 100);
        assert_eq!(b.wmap.len(), 100, "wmap and writes must agree after the spill");
        // Every address maps to its (unique) log entry, via both paths.
        for i in 0..100usize {
            let expect = if i == 0 {
                100 + SMALL_WRITES as u64 - 1
            } else {
                i as u64
            };
            assert_eq!(b.redo_lookup(0x4000 + i * 8), Some(expect), "addr {i}");
        }
        // Overwrite through the map path; the log must not grow.
        b.redo_record(0x4000 + 50 * 8, 999);
        assert_eq!(b.writes.len(), 100);
        assert_eq!(b.redo_lookup(0x4000 + 50 * 8), Some(999));
        b.clear();
        assert!(b.writes.is_empty());
        assert_eq!(b.redo_lookup(0x4000), None);
    }

    #[test]
    fn writemap_get_or_insert_is_single_probe_equivalent() {
        let mut m = WriteMap::new();
        // Miss inserts and reports None; hit returns the recorded index
        // without disturbing it. Orec-index-shaped keys (small, dense)
        // must spread, not cluster.
        for i in 0..100usize {
            assert_eq!(m.get_or_insert(i, i * 3), None, "first probe of {i}");
        }
        for i in 0..100usize {
            assert_eq!(m.get_or_insert(i, 777), Some(i * 3), "key {i}");
            assert_eq!(m.get(i), Some(i * 3), "get after hit {i}");
        }
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn read_log_stays_deduplicated_across_the_spill() {
        let mut b = LogBufs::default();
        // Inline window: duplicates refresh in place, no index is built.
        for i in 0..SMALL_READS {
            assert_eq!(b.read_slot_or_append(i, i as u64), None);
            assert_eq!(b.read_slot_or_append(i, 0), Some(i));
        }
        assert_eq!(b.reads.len(), SMALL_READS);
        assert_eq!(b.rmap.len(), 0, "inline window must not touch the index");
        // A duplicate at exactly the window edge still resolves inline.
        assert_eq!(b.read_slot_or_append(0, 0), Some(0));
        assert_eq!(b.rmap.len(), 0);
        // Spill well past the window; dedup must keep working via the map.
        for i in SMALL_READS..100 {
            assert_eq!(b.read_slot_or_append(i, i as u64), None, "fresh key {i}");
        }
        assert_eq!(b.reads.len(), 100);
        assert_eq!(b.rmap.len(), 100, "rmap and reads must agree after the spill");
        for i in 0..100usize {
            assert_eq!(b.read_slot_or_append(i, 0), Some(i), "spilled dup {i}");
        }
        assert_eq!(b.reads.len(), 100, "duplicates must not grow the log");
        b.clear();
        assert!(b.reads.is_empty());
        assert_eq!(b.read_slot_or_append(5, 1), None, "fresh after clear");
    }

    #[test]
    fn prewarm_reserves_to_the_high_watermark() {
        let mut b = LogBufs::default();
        for i in 0..50usize {
            b.reads.push((i, 0));
            b.writes.push((i, 0));
            b.undo.push((i, 0));
        }
        b.clear();
        // A fresh arena has no capacity yet but inherits the hints.
        b.reads = Vec::new();
        b.writes = Vec::new();
        b.undo = Vec::new();
        b.prewarm();
        assert!(b.reads.capacity() >= 50, "reads hint not applied");
        assert!(b.writes.capacity() >= 50, "writes hint not applied");
        assert!(b.undo.capacity() >= 50, "undo hint not applied");
        // Steady state: prewarm against retained capacity must not shrink.
        let cap = b.reads.capacity();
        b.prewarm();
        assert_eq!(b.reads.capacity(), cap);
    }

    #[test]
    fn op_tallies_reset_on_take() {
        let mut b = LogBufs::default();
        b.silent_elisions = 3;
        b.clock_elisions = 2;
        b.clock_retries = 1;
        b.dedup_hits = 7;
        b.shard_syncs = 5;
        b.seqlock_elisions = 4;
        let t = b.take_op_tallies();
        assert_eq!(
            (t.silent_elisions, t.clock_elisions, t.clock_retries, t.dedup_hits),
            (3, 2, 1, 7)
        );
        assert_eq!((t.shard_syncs, t.seqlock_elisions), (5, 4));
        let t2 = b.take_op_tallies();
        assert_eq!(
            t2.silent_elisions
                + t2.clock_elisions
                + t2.clock_retries
                + t2.shard_syncs
                + t2.seqlock_elisions,
            0
        );
    }

    #[test]
    fn arena_take_release_reuses_capacity() {
        // Prime the thread-local arena with grown buffers.
        let mut a = Arena::take();
        a.logs.reads.reserve(1024);
        let cap = a.logs.reads.capacity();
        let (ch, ah) = a.take_handler_vecs();
        a.release(ch, ah);
        // The next take on this thread sees the same storage.
        let a2 = Arena::take();
        assert!(a2.logs.reads.capacity() >= cap, "capacity must survive release/take");
        let (ch, ah) = {
            let mut a2 = a2;
            let v = a2.take_handler_vecs();
            a2.release(v.0, v.1);
            Arena::take().take_handler_vecs()
        };
        assert!(ch.is_empty() && ah.is_empty());
    }

    #[test]
    fn handler_storage_survives_relifetime() {
        let mut a = Arena::take();
        let (mut ch, ah) = a.take_handler_vecs();
        ch.reserve(32);
        let cap = ch.capacity();
        ch.push(Box::new(|| {}));
        ch.clear();
        a.release(ch, ah);
        let mut a = Arena::take();
        let (ch, _ah) = a.take_handler_vecs();
        assert!(ch.capacity() >= cap, "handler allocation must be reused");
    }
}
