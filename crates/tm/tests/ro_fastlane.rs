//! Read-only fast-lane semantics, black-box:
//!
//! * **Zero allocations.** A steady-state read-only commit must never touch
//!   the heap, on any algorithm, through both `atomic_ro` and `relaxed_ro`.
//!   The counting global allocator makes that a hard assertion, the same
//!   guard the `stm_fastpath` bench applies to read-write commits.
//! * **Publication safety.** A value published under a transactional flag
//!   is fully visible to any fast-lane reader that observes the flag.
//! * **Privatization safety.** Once a transaction has logically privatized
//!   a buffer (cleared its shared flag), the privatizer may mutate the
//!   buffer *non-transactionally*; concurrent fast-lane readers must either
//!   see the buffer still published — and then a consistent snapshot of its
//!   contents — or skip it, never a torn mix. This is the paper's §3.3
//!   reference-count / `item_free` pattern with the refcount elided.
//!
//! White-box counterparts (orec quiescence, clock/seqlock silence) live in
//! `tm::runtime`'s unit tests.

use std::sync::Arc;

use tm::{
    Algorithm, ContentionManager, RelaxedPlan, SerialLockMode, TCell, TmRuntime, Transaction,
};

#[global_allocator]
static COUNTING_ALLOC: testkit::alloc::Counting = testkit::alloc::Counting;

fn runtimes() -> Vec<TmRuntime> {
    [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec]
        .into_iter()
        .map(|algo| {
            TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .build()
        })
        .collect()
}

#[test]
fn ro_commits_never_allocate() {
    for rt in runtimes() {
        let cells: Vec<TCell<u64>> = (0..32).map(TCell::new).collect();
        let run_atomic = || {
            rt.atomic_ro(|tx| {
                let mut s = 0u64;
                for c in &cells {
                    s = s.wrapping_add(tx.read(c)?);
                }
                Ok(s)
            })
        };
        let run_relaxed = || {
            rt.relaxed_ro(RelaxedPlan::new(), |tx| {
                let mut s = 0u64;
                for c in &cells {
                    s = s.wrapping_add(tx.read(c)?);
                }
                Ok(s)
            })
        };
        // Warmup sizes the thread-local arena; steady state must be clean.
        for _ in 0..20 {
            run_atomic();
            run_relaxed();
        }
        let expect: u64 = (0..32).sum();
        let before = testkit::alloc::thread_allocs();
        for _ in 0..200 {
            assert_eq!(run_atomic(), expect);
            assert_eq!(run_relaxed(), expect);
        }
        let allocs = testkit::alloc::thread_allocs() - before;
        assert_eq!(
            allocs,
            0,
            "{:?}: {allocs} heap allocations across 400 read-only commits",
            rt.algorithm()
        );
        assert_eq!(rt.stats().ro_fast_commits, 440, "{:?}", rt.algorithm());
    }
}

#[test]
fn ro_reads_spilling_the_inline_window_never_allocate() {
    // Multiget-sized read sets (past SMALL_READS) exercise the read-set
    // index; its slab must be arena-retained like every other log buffer.
    for rt in runtimes() {
        let cells: Vec<TCell<u64>> = (0..128).map(TCell::new).collect();
        let run = || {
            rt.atomic_ro(|tx| {
                let mut s = 0u64;
                for c in &cells {
                    s = s.wrapping_add(tx.read(c)?);
                }
                Ok(s)
            })
        };
        for _ in 0..20 {
            run();
        }
        let before = testkit::alloc::thread_allocs();
        for _ in 0..200 {
            assert_eq!(run(), (0..128).sum());
        }
        let allocs = testkit::alloc::thread_allocs() - before;
        assert_eq!(
            allocs,
            0,
            "{:?}: {allocs} heap allocations across 200 spilled RO commits",
            rt.algorithm()
        );
    }
}

/// Publication: writer initializes a payload inside the transaction that
/// sets the published flag; a fast-lane reader that sees the flag must see
/// the whole payload.
#[test]
fn fast_lane_readers_see_publication_atomically() {
    for rt in runtimes() {
        let rt = Arc::new(rt);
        let published = Arc::new(TCell::new(0u64));
        let payload: Arc<Vec<TCell<u64>>> = Arc::new((0..16).map(|_| TCell::new(0)).collect());

        let writer = {
            let (rt, published, payload) = (rt.clone(), published.clone(), payload.clone());
            std::thread::spawn(move || {
                for round in 1..400u64 {
                    rt.atomic(|tx| {
                        // Unpublish, scramble, republish — all atomic.
                        tx.write(&*published, 0)?;
                        Ok(())
                    });
                    rt.atomic(|tx| {
                        for (i, c) in payload.iter().enumerate() {
                            tx.write(c, round * 1000 + i as u64)?;
                        }
                        tx.write(&*published, round)?;
                        Ok(())
                    });
                }
            })
        };

        let mut observed = 0u64;
        // Sampling the finished flag BEFORE the snapshot guarantees the
        // loop's last snapshot runs entirely after the writer — the final
        // state is published, so at least one observation always lands.
        loop {
            let finished = writer.is_finished();
            let snap = rt.atomic_ro(|tx| {
                let round = tx.read(&*published)?;
                if round == 0 {
                    return Ok(None);
                }
                let mut vals = [0u64; 16];
                for (i, c) in payload.iter().enumerate() {
                    vals[i] = tx.read(c)?;
                }
                Ok(Some((round, vals)))
            });
            if let Some((round, vals)) = snap {
                for (i, v) in vals.iter().enumerate() {
                    assert_eq!(
                        *v,
                        round * 1000 + i as u64,
                        "{:?}: reader saw a partially published payload",
                        rt.algorithm()
                    );
                }
                observed += 1;
            }
            if finished {
                break;
            }
        }
        writer.join().unwrap();
        assert!(observed > 0, "reader never overlapped a published payload");
    }
}

/// Privatization: after the privatizing transaction commits, the buffer is
/// the privatizer's — it mutates it with plain non-transactional stores.
/// Fast-lane readers must never observe those plain stores under a flag
/// that still claims the buffer is shared.
#[test]
fn fast_lane_readers_respect_privatization() {
    for rt in runtimes() {
        let rt = Arc::new(rt);
        let shared = Arc::new(TCell::new(1u64));
        let buf: Arc<Vec<TCell<u64>>> = Arc::new((0..16).map(|_| TCell::new(7)).collect());

        let privatizer = {
            let (rt, shared, buf) = (rt.clone(), shared.clone(), buf.clone());
            std::thread::spawn(move || {
                for round in 0..300u64 {
                    // Take the buffer private.
                    rt.atomic(|tx| tx.write(&*shared, 0));
                    // Quiescence: one transactional no-op read of the flag
                    // word pairs with in-flight readers' snapshots (the
                    // runtime's privatization fence).
                    rt.atomic(|tx| tx.read(&*shared));
                    // Ours now: plain stores, no transaction.
                    for c in buf.iter() {
                        c.store_direct(round * 31);
                    }
                    // Republish a consistent state transactionally.
                    rt.atomic(|tx| {
                        for c in buf.iter() {
                            tx.write(c, 7)?;
                        }
                        tx.write(&*shared, 1)?;
                        Ok(())
                    });
                }
            })
        };

        loop {
            let finished = privatizer.is_finished();
            let snap = rt.atomic_ro(|tx| {
                if tx.read(&*shared)? == 0 {
                    return Ok(None); // privatized: hands off
                }
                let mut vals = [0u64; 16];
                for (i, c) in buf.iter().enumerate() {
                    vals[i] = tx.read(c)?;
                }
                Ok(Some(vals))
            });
            if let Some(vals) = snap {
                assert!(
                    vals.iter().all(|&v| v == 7),
                    "{:?}: reader saw privatized-buffer mutation under shared flag: {vals:?}",
                    rt.algorithm()
                );
            }
            if finished {
                break;
            }
        }
        privatizer.join().unwrap();
    }
}
