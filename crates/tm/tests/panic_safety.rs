//! Panic semantics of the runtime (ISSUE 3 acceptance criteria).
//!
//! A panic unwinding out of a transaction body, an engine commit path, or
//! a handler must leave the runtime fully usable: undo replayed, every
//! orec and the serial lock released, the hourglass gate reopened. The
//! headline test panics mid-write-set on one thread under each of
//! eager/lazy/NOrec × RW-lock/NoLock and then has three other threads
//! commit 1000 transactions each with a ticket-style serializability
//! oracle.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Barrier;
use std::time::Duration;

use tm::{
    Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction, TxOptions,
};

/// The six configurations the acceptance criterion names:
/// eager/lazy/NOrec × RW-lock/NoLock.
fn all_configs() -> Vec<TmRuntime> {
    let mut v = Vec::new();
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        v.push(
            TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::GCC_DEFAULT)
                .serial_lock(SerialLockMode::ReaderWriter)
                .build(),
        );
        v.push(
            TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .build(),
        );
    }
    v
}

fn config_label(rt: &TmRuntime) -> String {
    format!("{}/{:?}", rt.algorithm(), rt.serial_lock_mode())
}

/// Thread A panics mid-write-set; threads B–D then commit 1000
/// transactions each. If the panic leaked an orec, the serial read lock,
/// or (NOrec) the sequence lock, the workers would spin forever — the
/// deadline turns that hang into a loud failure.
#[test]
fn body_panic_never_blocks_other_threads() {
    for rt in all_configs() {
        let label = config_label(&rt);
        let cells: Vec<TCell<u64>> = (0..8).map(|_| TCell::new(0)).collect();
        let ticket = TCell::new(0u64);

        // Thread A: write half the cells (locking their orecs under
        // eager), then panic mid-write-set.
        let panicked = std::thread::scope(|s| {
            s.spawn(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    rt.atomic(|tx| -> Result<(), tm::Abort> {
                        for c in &cells[..4] {
                            let v = tx.read(c)?;
                            tx.write(c, v + 1_000_000)?;
                        }
                        panic!("chaos: die mid-write-set");
                    })
                }))
                .is_err()
            })
            .join()
            .expect("panic must be contained by catch_unwind")
        });
        assert!(panicked, "{label}: thread A must observe its own panic");

        let stats = rt.stats();
        assert_eq!(stats.panic_aborts, 1, "{label}: panic_abort not counted");
        for c in &cells {
            assert_eq!(c.load_direct(), 0, "{label}: panic left a dirty write");
        }

        // Threads B–D: 1000 commits each, with a ticket oracle. A leaked
        // lock shows up as RetryLimit/Timeout instead of a silent hang.
        const THREADS: usize = 3;
        const TXNS: u64 = 1000;
        let barrier = Barrier::new(THREADS);
        let opts = TxOptions::new().deadline(Duration::from_secs(60));
        let mut tickets: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let rt = &rt;
                    let cells = &cells;
                    let ticket = &ticket;
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        let mut mine = Vec::with_capacity(TXNS as usize);
                        for j in 0..TXNS {
                            let tk = rt
                                .atomic_with(opts, |tx| {
                                    let tk = tx.fetch_add(ticket, 1)?;
                                    let c = &cells[(t as u64 + j) as usize % cells.len()];
                                    let v = tx.read(c)?;
                                    tx.write(c, v + 1)?;
                                    Ok(tk)
                                })
                                .unwrap_or_else(|e| {
                                    panic!("worker {t} txn {j} failed with {e}: runtime blocked")
                                });
                            mine.push(tk);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker must not die"))
                .collect()
        });

        // Oracle: tickets are exactly 0..n with no gap or duplicate, and
        // the per-cell increments add up.
        tickets.sort_unstable();
        let expected: Vec<u64> = (0..THREADS as u64 * TXNS).collect();
        assert_eq!(tickets, expected, "{label}: ticket oracle failed");
        assert_eq!(ticket.load_direct(), THREADS as u64 * TXNS, "{label}");
        let sum: u64 = cells.iter().map(|c| c.load_direct()).sum();
        assert_eq!(sum, THREADS as u64 * TXNS, "{label}: lost increments");
    }
}

/// A panic in an onAbort handler: rollback has already completed, the
/// payload propagates, and the runtime stays usable.
#[test]
fn on_abort_handler_panic_is_well_defined() {
    let rt = TmRuntime::default_runtime();
    let c = TCell::new(0u64);
    let r = catch_unwind(AssertUnwindSafe(|| {
        rt.atomic(|tx| -> Result<(), tm::Abort> {
            tx.write(&c, 7)?;
            tx.on_abort(|| panic!("onAbort boom"));
            Err(tm::Abort::Conflict) // force the abort path
        })
    }));
    let payload = r.expect_err("handler panic must propagate");
    assert_eq!(
        payload.downcast_ref::<&str>(),
        Some(&"onAbort boom"),
        "original payload must survive"
    );
    assert_eq!(c.load_direct(), 0, "abort must have rolled back first");
    let stats = rt.stats();
    assert_eq!(stats.handler_panics, 1);
    assert_eq!(stats.aborts, 1);
    // Runtime still usable.
    rt.atomic(|tx| tx.fetch_add(&c, 1));
    assert_eq!(c.load_direct(), 1);
}

/// A panic in an onCommit handler *after* the commit point: the data stays
/// committed (a handler panic never rolls back), the payload propagates.
#[test]
fn on_commit_handler_panic_after_commit_point_keeps_data() {
    let rt = TmRuntime::default_runtime();
    let c = TCell::new(0u64);
    let r = catch_unwind(AssertUnwindSafe(|| {
        rt.atomic(|tx| {
            tx.write(&c, 42)?;
            tx.on_commit(|| panic!("onCommit boom"));
            Ok(())
        })
    }));
    assert!(r.is_err(), "handler panic must propagate");
    assert_eq!(c.load_direct(), 42, "committed data must NOT roll back");
    let stats = rt.stats();
    assert_eq!(stats.commits, 1, "the transaction did commit");
    assert_eq!(stats.handler_panics, 1);
    rt.atomic(|tx| tx.fetch_add(&c, 1));
    assert_eq!(c.load_direct(), 43);
}

/// Before the commit point — i.e. on an attempt that aborts — registered
/// onCommit handlers are discarded, so a panicking one never fires.
#[test]
fn on_commit_handler_never_runs_before_commit_point() {
    let rt = TmRuntime::default_runtime();
    let c = TCell::new(0u64);
    let attempts = std::cell::Cell::new(0u32);
    let v = rt.atomic(|tx| {
        attempts.set(attempts.get() + 1);
        if attempts.get() == 1 {
            tx.on_commit(|| panic!("must never run: attempt aborted"));
            return Err(tm::Abort::Conflict);
        }
        tx.fetch_add(&c, 5)
    });
    assert_eq!(v, 0);
    assert_eq!(c.load_direct(), 5);
    assert_eq!(attempts.get(), 2);
    assert_eq!(rt.stats().handler_panics, 0, "discarded handler must not run");
}

/// All handlers run even when an earlier one panics; the first payload
/// wins.
#[test]
fn later_handlers_still_run_after_a_handler_panic() {
    let rt = TmRuntime::default_runtime();
    let c = TCell::new(0u64);
    let ran_second = std::sync::atomic::AtomicBool::new(false);
    let r = catch_unwind(AssertUnwindSafe(|| {
        rt.atomic(|tx| {
            tx.on_commit(|| panic!("first"));
            tx.on_commit(|| ran_second.store(true, std::sync::atomic::Ordering::SeqCst));
            tx.write(&c, 1)
        })
    }));
    let payload = r.expect_err("first handler's panic must propagate");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"first"));
    assert!(
        ran_second.load(std::sync::atomic::Ordering::SeqCst),
        "second handler must still run"
    );
    assert_eq!(rt.stats().handler_panics, 1);
}

/// A panic while serial-irrevocable cannot undo the uninstrumented direct
/// writes (same as a panic inside a lock-based critical section) — but it
/// must release the serial write lock so the runtime stays usable.
#[test]
fn panic_while_serial_irrevocable_releases_the_runtime() {
    let rt = TmRuntime::default_runtime();
    let c = TCell::new(0u64);
    let r = catch_unwind(AssertUnwindSafe(|| {
        rt.relaxed(tm::RelaxedPlan::new(), |tx| -> Result<(), tm::Abort> {
            tx.write(&c, 9)?;
            tx.unsafe_op(|| {})?; // in-flight switch to serial-irrevocable
            panic!("die while irrevocable");
        })
    }));
    assert!(r.is_err());
    let stats = rt.stats();
    assert_eq!(stats.panic_aborts, 1);
    assert_eq!(stats.in_flight_switch, 1);
    // Documented semantics: irrevocable effects persist (the write was
    // published by the switch).
    assert_eq!(c.load_direct(), 9);
    // The serial write lock must be free again: atomic transactions (which
    // take the read side) and another serial switch both proceed.
    rt.atomic(|tx| tx.fetch_add(&c, 1));
    rt.relaxed(tm::RelaxedPlan::serial(), |tx| tx.fetch_add(&c, 1));
    assert_eq!(c.load_direct(), 11);
}

/// A body panic on a NoLock runtime with the Hourglass CM: the gate a
/// starving transaction closed is reopened by the unwind teardown.
#[test]
fn hourglass_gate_reopens_after_panic() {
    let rt = TmRuntime::builder()
        .algorithm(Algorithm::Eager)
        .contention_manager(ContentionManager::Hourglass(1))
        .serial_lock(SerialLockMode::None)
        .build();
    let c = TCell::new(0u64);
    let attempts = std::cell::Cell::new(0u32);
    let r = catch_unwind(AssertUnwindSafe(|| {
        rt.atomic(|tx| -> Result<(), tm::Abort> {
            attempts.set(attempts.get() + 1);
            let _ = tx.read(&c)?;
            if attempts.get() == 1 {
                // One abort puts us over Hourglass(1): the retry closes
                // the gate...
                return Err(tm::Abort::Conflict);
            }
            // ...and then we die holding it.
            panic!("die with the hourglass closed");
        })
    }));
    assert!(r.is_err());
    // If the gate were still closed, this transaction would hang forever;
    // bound it so a regression fails loudly instead.
    let v = rt
        .atomic_with(
            TxOptions::new().deadline(Duration::from_secs(30)),
            |tx| tx.fetch_add(&c, 1),
        )
        .expect("gate must be open after the panic");
    assert_eq!(v, 0);
    assert_eq!(c.load_direct(), 1);
}
