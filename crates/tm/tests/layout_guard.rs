//! Layout guard: pins the cache-line geometry the contention design
//! depends on, so a refactor (a new telemetry field, a dropped
//! `repr(align)`) cannot silently reintroduce false sharing.
//!
//! The real guards are `const` assertions next to the type definitions —
//! they fail the *build*, not the test run. This test re-checks the same
//! facts through `tm::layout` so the contract is visible (and grep-able)
//! from outside the crate, and exercises the runtime-facing invariants the
//! consts cannot see: that a built runtime actually fans its shards and
//! stripes out at the advertised granularity.

use tm::layout;
use tm::{Algorithm, ContentionManager, SerialLockMode, TmRuntime};

#[test]
fn clock_shards_are_exactly_one_cache_line() {
    // One committer's CAS must never invalidate another shard's line: a
    // shard fills its line completely (size) and starts on a line
    // boundary (align). If a field is ever added that pushes the struct
    // past 64 bytes, the in-source const assert stops the build before
    // this test runs.
    assert_eq!(layout::CLOCK_SHARD_SIZE, layout::CACHE_LINE);
    assert_eq!(layout::CLOCK_SHARD_ALIGN, layout::CACHE_LINE);
}

#[test]
fn orec_stripes_are_exactly_one_cache_line() {
    // The stripe-aware hash puts same-block words on one stripe and
    // unrelated blocks on others; that only isolates coherence traffic if
    // stripe boundaries coincide with cache-line boundaries.
    assert_eq!(layout::OREC_STRIPE_SIZE, layout::CACHE_LINE);
    assert_eq!(layout::OREC_STRIPE_ALIGN, layout::CACHE_LINE);
}

#[test]
fn seqlock_owns_its_cache_line() {
    // NOrec's hottest word: it must at least not share a line with the
    // clock shards or stats counters on top of its true contention.
    assert_eq!(layout::SEQLOCK_ALIGN, layout::CACHE_LINE);
    assert!(layout::SEQLOCK_SIZE <= layout::CACHE_LINE);
}

#[test]
fn built_runtime_exposes_the_advertised_fanout() {
    let rt = TmRuntime::builder()
        .algorithm(Algorithm::Eager)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .clock_shards(8)
        .orec_log_size(6)
        .build();
    assert_eq!(rt.clock_shards(), 8);
    assert_eq!(rt.clock_shard_stats().len(), 8);
    // 2^6 orecs at 8 per stripe → 8 stripes of conflict telemetry.
    assert_eq!(rt.orec_stripe_count(), 8);
    assert_eq!(rt.orec_stripe_conflicts().len(), 8);
    // Thread affinity is a real shard index.
    assert!(rt.current_thread_shard() < 8);
}

#[test]
#[should_panic(expected = "power of two")]
fn non_power_of_two_clock_shards_rejected_at_build() {
    let _ = TmRuntime::builder().clock_shards(6).build();
}

#[test]
#[should_panic(expected = "power of two")]
fn oversized_clock_shards_rejected_at_build() {
    let _ = TmRuntime::builder().clock_shards(128).build();
}
