//! Live-reconfiguration contract: `TmRuntime::switch_config` swaps the
//! algorithm and contention manager under concurrent load without losing
//! updates, without letting commit stamps regress across the swap, and
//! refusing to run at all when the serial lock (its quiesce mechanism)
//! is compiled out.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use tm::{
    last_commit_stamp, Algorithm, ContentionManager, SerialLockMode, SwitchError, TCell, TmRuntime,
    Transaction,
};

const ALGOS: [Algorithm; 3] = [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec];

#[test]
fn switch_reports_change_and_noop() {
    let rt = TmRuntime::builder().algorithm(Algorithm::Eager).build();
    assert_eq!(
        rt.switch_config(Algorithm::Eager, ContentionManager::GCC_DEFAULT),
        Ok(false),
        "same config must be a no-op"
    );
    assert_eq!(
        rt.switch_config(Algorithm::Norec, ContentionManager::None),
        Ok(true)
    );
    assert_eq!(rt.algorithm(), Algorithm::Norec);
    assert_eq!(rt.contention_manager(), ContentionManager::None);
    assert_eq!(rt.stats().config_switches, 1);
    // CM-only change still counts as a switch (no time-base realign needed).
    assert_eq!(
        rt.switch_config(Algorithm::Norec, ContentionManager::Hourglass(32)),
        Ok(true)
    );
    assert_eq!(rt.stats().config_switches, 2);
}

#[test]
fn switch_requires_serial_lock() {
    let rt = TmRuntime::builder()
        .algorithm(Algorithm::Eager)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .build();
    assert_eq!(
        rt.switch_config(Algorithm::Norec, ContentionManager::None),
        Err(SwitchError::NoSerialLock)
    );
    assert_eq!(rt.algorithm(), Algorithm::Eager, "config must be untouched");
}

/// Every algorithm→algorithm edge (including via norec, whose time base is
/// the seqlock, not the sharded clock): commit stamps observed in external
/// lock order never regress across a switch, and no increment is lost.
#[test]
fn stamps_monotone_and_counts_exact_across_all_switch_edges() {
    for from in ALGOS {
        for to in ALGOS {
            if from == to {
                continue;
            }
            let rt = TmRuntime::builder().algorithm(from).build();
            let c = TCell::new(0u64);
            let lock: Mutex<Vec<u64>> = Mutex::new(Vec::new());
            let switched = AtomicBool::new(false);
            std::thread::scope(|s| {
                let rt = &rt;
                let c = &c;
                let lock = &lock;
                let switched = &switched;
                for _ in 0..3 {
                    s.spawn(move || {
                        for i in 0..128u32 {
                            let mut log = lock.lock().unwrap();
                            rt.atomic(|tx| tx.fetch_add(c, 1));
                            log.push(last_commit_stamp());
                            drop(log);
                            if i == 64 && !switched.swap(true, Ordering::Relaxed) {
                                rt.switch_config(to, ContentionManager::Backoff { max_shift: 4 })
                                    .unwrap();
                            }
                        }
                    });
                }
            });
            assert_eq!(rt.atomic(|tx| tx.read(&c)), 3 * 128, "{from}->{to}");
            assert_eq!(rt.algorithm(), to);
            let log = lock.into_inner().unwrap();
            for w in log.windows(2) {
                assert!(
                    w[1] >= w[0],
                    "{from}->{to}: stamp regressed across switch: {} then {}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// A writer committing after `observation_stamp()` returns must mint a
/// strictly larger stamp — the property the cache's hot-key publication
/// relies on — including when a switch lands between the two.
#[test]
fn observation_stamp_below_later_writers_across_switch() {
    for from in ALGOS {
        for to in ALGOS {
            let rt = TmRuntime::builder().algorithm(from).build();
            let c = TCell::new(0u64);
            rt.atomic(|tx| tx.write(&c, 1));
            let obs = rt.observation_stamp();
            rt.switch_config(to, ContentionManager::GCC_DEFAULT).unwrap();
            rt.atomic(|tx| tx.write(&c, 2));
            let w = last_commit_stamp();
            assert!(
                w > obs,
                "{from}->{to}: writer stamp {w} not above observation {obs}"
            );
        }
    }
}

/// Hammer switches from a dedicated thread while workers run mixed
/// read/write transactions: nothing deadlocks, reads are consistent,
/// and the final tally is exact.
#[test]
fn switch_storm_under_mixed_load() {
    let rt = TmRuntime::builder().algorithm(Algorithm::Eager).build();
    let cells: Vec<TCell<u64>> = (0..8).map(|_| TCell::new(0)).collect();
    let done = AtomicBool::new(false);
    let switches = AtomicU64::new(0);
    std::thread::scope(|s| {
        let rt = &rt;
        let cells = &cells[..];
        let done = &done;
        let switches = &switches;
        for w in 0..3usize {
            s.spawn(move || {
                for i in 0..400u64 {
                    if (i + w as u64) % 4 == 0 {
                        // Read-only sweep: all cells move together below.
                        let (a, b) =
                            rt.atomic(|tx| Ok((tx.read(&cells[0])?, tx.read(&cells[0])?)));
                        assert_eq!(a, b);
                    } else {
                        rt.atomic(|tx| {
                            let k = (i as usize + w) % cells.len();
                            tx.fetch_add(&cells[k], 1)
                        });
                    }
                }
            });
        }
        s.spawn(move || {
            let plans = [
                (Algorithm::Lazy, ContentionManager::None),
                (Algorithm::Norec, ContentionManager::Backoff { max_shift: 3 }),
                (Algorithm::Eager, ContentionManager::Hourglass(16)),
                (Algorithm::Eager, ContentionManager::GCC_DEFAULT),
            ];
            let mut k = 0usize;
            while !done.load(Ordering::Acquire) {
                let (a, cm) = plans[k % plans.len()];
                if rt.switch_config(a, cm).unwrap() {
                    switches.fetch_add(1, Ordering::Relaxed);
                }
                k += 1;
                std::thread::yield_now();
            }
        });
        for w in 0..3usize {
            // Each worker writes 400 - its read-only share.
            let _ = w;
        }
        // Workers joined when the non-switcher spawns finish; signal the
        // switcher via `done` after they do by joining through the scope:
        // the scope joins all threads, so flip `done` from a watcher.
        s.spawn(move || {
            // Crude but deterministic-enough: wait until the expected total
            // lands, then stop the switcher.
            let expected: u64 = (0..3u64)
                .map(|w| (0..400u64).filter(|i| (i + w) % 4 != 0).count() as u64)
                .sum();
            loop {
                let total: u64 = cells
                    .iter()
                    .map(|c| rt.atomic(|tx| tx.read(c)))
                    .sum();
                if total >= expected {
                    done.store(true, Ordering::Release);
                    return;
                }
                std::thread::yield_now();
            }
        });
    });
    let expected: u64 = (0..3u64)
        .map(|w| (0..400u64).filter(|i| (i + w) % 4 != 0).count() as u64)
        .sum();
    let total: u64 = cells.iter().map(|c| rt.atomic(|tx| tx.read(c))).sum();
    assert_eq!(total, expected, "increments lost across switch storm");
    assert!(
        switches.load(Ordering::Relaxed) > 0,
        "storm never actually switched"
    );
    assert_eq!(rt.stats().config_switches, switches.load(Ordering::Relaxed));
}
