//! Commit-stamp contract: `tm::last_commit_stamp()` (read from inside an
//! onCommit handler or right after a commit) orders same-data writers
//! consistently with their real-time commit order, across every engine
//! and for serial-irrevocable attempts and `mint_commit_stamp`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tm::{last_commit_stamp, Algorithm, RelaxedPlan, TCell, TmRuntime, Transaction};

const ALGOS: [Algorithm; 3] = [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec];

fn runtime(a: Algorithm) -> TmRuntime {
    TmRuntime::builder().algorithm(a).build()
}

/// A read-write commit mints a stamp strictly above any earlier
/// same-thread stamp.
#[test]
fn rw_stamps_monotone_single_thread() {
    for a in ALGOS {
        let rt = runtime(a);
        let c = TCell::new(0u64);
        let mut prev = 0;
        for i in 1..=32u64 {
            rt.atomic(|tx| tx.write(&c, i));
            let s = last_commit_stamp();
            assert!(s > prev, "{a}: stamp {s} not above previous {prev}");
            prev = s;
        }
    }
}

/// A read-only commit reuses its snapshot: never above a later writer.
#[test]
fn ro_stamp_not_above_writers() {
    for a in ALGOS {
        let rt = runtime(a);
        let c = TCell::new(7u64);
        rt.atomic(|tx| tx.write(&c, 8));
        let w = last_commit_stamp();
        rt.atomic(|tx| tx.read(&c));
        let r = last_commit_stamp();
        assert!(r <= w, "{a}: read-only stamp {r} above prior writer {w}");
        rt.atomic(|tx| tx.write(&c, 9));
        let w2 = last_commit_stamp();
        assert!(w2 > r, "{a}: later writer {w2} not above RO snapshot {r}");
    }
}

/// The stamp is already visible inside the onCommit handler that the
/// committing transaction registered.
#[test]
fn stamp_visible_in_commit_handler() {
    for a in ALGOS {
        let rt = runtime(a);
        let c = TCell::new(0u64);
        let seen = AtomicU64::new(0);
        rt.relaxed(RelaxedPlan::new(), |tx| {
            tx.write(&c, 1)?;
            tx.on_commit(|| {
                seen.store(last_commit_stamp(), Ordering::SeqCst);
            });
            Ok(())
        });
        let s = seen.load(Ordering::SeqCst);
        assert!(s > 0, "{a}: handler saw no stamp");
        assert_eq!(s, last_commit_stamp(), "{a}: handler stamp differs");
    }
}

/// Serial-irrevocable attempts with a commit handler mint a stamp that
/// still orders against instrumented writers on both sides.
#[test]
fn serial_stamp_ordered_with_instrumented() {
    for a in ALGOS {
        let rt = runtime(a);
        let c = TCell::new(0u64);
        rt.atomic(|tx| tx.write(&c, 1));
        let before = last_commit_stamp();
        rt.relaxed(RelaxedPlan::serial(), |tx| {
            tx.write(&c, 2)?;
            tx.on_commit(|| {});
            Ok(())
        });
        let serial = last_commit_stamp();
        assert!(
            serial > before,
            "{a}: serial stamp {serial} not above prior writer {before}"
        );
        rt.atomic(|tx| tx.write(&c, 3));
        let after = last_commit_stamp();
        assert!(
            after > serial,
            "{a}: later writer {after} not above serial stamp {serial}"
        );
    }
}

/// `mint_commit_stamp` (direct effects under an external lock) interleaves
/// correctly with transactional stamps: later transactional writers mint a
/// stamp >= the direct mint (strictly greater for clock engines).
#[test]
fn direct_mint_ordered_with_transactions() {
    for a in ALGOS {
        let rt = runtime(a);
        let c = TCell::new(0u64);
        rt.atomic(|tx| tx.write(&c, 1));
        let w = last_commit_stamp();
        let m = rt.mint_commit_stamp();
        assert!(m >= w, "{a}: direct mint {m} below prior writer {w}");
        rt.atomic(|tx| tx.write(&c, 2));
        let w2 = last_commit_stamp();
        assert!(w2 >= m, "{a}: later writer {w2} below direct mint {m}");
        if a != Algorithm::Norec {
            assert!(w2 > m, "{a}: later writer {w2} should strictly exceed mint {m}");
        }
    }
}

/// Cross-thread: writers serialized by an external mutex over the same
/// cell observe non-decreasing stamps in acquisition order (strictly
/// increasing for the clock engines; norec ties are legal and broken by
/// append order in consumers).
#[test]
fn cross_thread_same_key_stamps_follow_lock_order() {
    for a in ALGOS {
        let rt = runtime(a);
        let c = TCell::new(0u64);
        let order: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..64 {
                        // The lock plays the part of the cache's per-item
                        // lock: same-key commits are externally serialized
                        // and must stamp in that order.
                        let mut log = order.lock().unwrap();
                        rt.atomic(|tx| tx.fetch_add(&c, 1));
                        log.push(last_commit_stamp());
                    }
                });
            }
        });
        let log = order.into_inner().unwrap();
        assert_eq!(log.len(), 256);
        for w in log.windows(2) {
            assert!(
                w[1] >= w[0],
                "{a}: stamp regressed across lock-ordered commits: {} then {}",
                w[0],
                w[1]
            );
        }
    }
}
