//! Runtime-semantics integration tests: the behaviors the Draft C++ TM
//! Specification (and GCC's implementation of it) promises, checked
//! against this runtime — handler ordering, irrevocability, serialization
//! accounting, contention-manager effects, and the serial lock.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use tm::{
    Abort, Algorithm, ContentionManager, RelaxedPlan, SerialLockMode, StatsSnapshot, TCell,
    TmRuntime, Transaction,
};

fn all_algorithms() -> [Algorithm; 3] {
    [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec]
}

// ---------------------------------------------------------------------
// onCommit / onAbort handlers
// ---------------------------------------------------------------------

#[test]
fn commit_handlers_run_in_registration_order() {
    let rt = TmRuntime::default_runtime();
    let order = std::cell::RefCell::new(Vec::new());
    rt.atomic(|tx| {
        tx.on_commit(|| order.borrow_mut().push(1));
        tx.on_commit(|| order.borrow_mut().push(2));
        tx.on_commit(|| order.borrow_mut().push(3));
        Ok(())
    });
    assert_eq!(*order.borrow(), vec![1, 2, 3]);
}

#[test]
fn abort_handlers_run_per_aborted_attempt() {
    // Two transactions colliding on one cell: the loser's abort handler
    // must fire before its retry.
    let rt = Arc::new(
        TmRuntime::builder()
            .contention_manager(ContentionManager::None)
            .serial_lock(SerialLockMode::None)
            .build(),
    );
    let cell = Arc::new(TCell::new(0u64));
    let aborts_seen = Arc::new(AtomicU32::new(0));
    let mut handles = vec![];
    for _ in 0..3 {
        let rt = rt.clone();
        let cell = cell.clone();
        let aborts_seen = aborts_seen.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..300 {
                rt.atomic(|tx| {
                    let a = aborts_seen.clone();
                    tx.on_abort(move || {
                        a.fetch_add(1, Ordering::SeqCst);
                    });
                    tx.fetch_add(&cell, 1)?;
                    Ok(())
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.load_direct(), 900);
    let s = rt.stats();
    assert_eq!(
        aborts_seen.load(Ordering::SeqCst) as u64,
        s.aborts,
        "one abort-handler run per abort: {s:?}"
    );
}

#[test]
fn commit_handlers_of_aborted_attempts_are_dropped() {
    // A transaction that cancels must not run handlers registered during
    // the attempt.
    let rt = TmRuntime::default_runtime();
    let fired = std::cell::Cell::new(0u32);
    let r: Result<(), _> = rt.try_atomic(|tx| {
        tx.on_commit(|| fired.set(fired.get() + 1));
        tm::cancel()
    });
    assert!(r.is_err());
    assert_eq!(fired.get(), 0);
    // And a later, successful transaction does not inherit them.
    rt.atomic(|_tx| Ok(()));
    assert_eq!(fired.get(), 0);
}

#[test]
fn on_commit_runs_after_serial_lock_released() {
    // GCC's onCommit handlers run "after the respective transaction
    // commits and releases all locks": from a handler, beginning a new
    // serial transaction must not deadlock.
    let rt = TmRuntime::default_runtime();
    let cell = TCell::new(0u64);
    let observed = std::cell::Cell::new(0u64);
    rt.relaxed(RelaxedPlan::serial(), |tx| {
        tx.write(&cell, 7)?;
        tx.on_commit(|| {
            // Re-entering the runtime from a handler: only possible if the
            // serial write lock is already released.
            observed.set(rt.atomic(|tx2| tx2.read(&cell)));
        });
        Ok(())
    });
    assert_eq!(observed.get(), 7);
}

// ---------------------------------------------------------------------
// Irrevocability and serialization accounting
// ---------------------------------------------------------------------

#[test]
fn unsafe_op_result_flows_back() {
    let rt = TmRuntime::default_runtime();
    let v = rt.relaxed(RelaxedPlan::new(), |tx| {
        let n = tx.unsafe_op(|| 40)?;
        Ok(n + 2)
    });
    assert_eq!(v, 42);
}

#[test]
fn irrevocable_writes_survive() {
    for algo in all_algorithms() {
        let rt = TmRuntime::builder().algorithm(algo).build();
        let a = TCell::new(0u64);
        let b = TCell::new(0u64);
        rt.relaxed(RelaxedPlan::new(), |tx| {
            tx.write(&a, 1)?; // buffered (lazy/norec) or in-place (eager)
            tx.unsafe_op(|| ())?; // switch: must flush the buffer
            assert!(tx.is_irrevocable());
            tx.write(&b, 2)?; // uninstrumented
            // Reads after the switch see both.
            assert_eq!(tx.read(&a)?, 1);
            assert_eq!(tx.read(&b)?, 2);
            Ok(())
        });
        assert_eq!((a.load_direct(), b.load_direct()), (1, 2), "{algo}");
    }
}

#[test]
fn nested_unsafe_ops_switch_once() {
    let rt = TmRuntime::default_runtime();
    rt.relaxed(RelaxedPlan::new(), |tx| {
        tx.unsafe_op(|| ())?;
        tx.unsafe_op(|| ())?;
        tx.unsafe_op(|| ())?;
        Ok(())
    });
    assert_eq!(rt.stats().in_flight_switch, 1);
}

#[test]
fn start_serial_does_not_count_in_flight() {
    let rt = TmRuntime::default_runtime();
    rt.relaxed(RelaxedPlan::serial(), |tx| {
        tx.unsafe_op(|| ())?;
        Ok(())
    });
    let s = rt.stats();
    assert_eq!(s.start_serial, 1);
    assert_eq!(s.in_flight_switch, 0);
    assert_eq!(s.irrevocable_commits, 1);
}

#[test]
fn serial_transactions_drain_concurrent_readers() {
    // While a start-serial transaction runs, no instrumented transaction
    // may be mid-flight (the RW lock semantics the paper blames for the
    // scalability cliff).
    let rt = Arc::new(TmRuntime::default_runtime());
    let in_flight = Arc::new(AtomicUsize::new(0));
    let cell = Arc::new(TCell::new(0u64));
    let mut handles = vec![];
    for _ in 0..3 {
        let rt = rt.clone();
        let in_flight = in_flight.clone();
        let cell = cell.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..200 {
                rt.atomic(|tx| {
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    let v = tx.fetch_add(&cell, 1);
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    v
                });
            }
        }));
    }
    for _ in 0..50 {
        let in_flight = in_flight.clone();
        rt.relaxed(RelaxedPlan::serial(), |tx| {
            // Exclusive: nobody else inside.
            assert_eq!(
                in_flight.load(Ordering::SeqCst),
                0,
                "a serial transaction observed a concurrent instrumented txn"
            );
            tx.unsafe_op(|| ())?;
            Ok(())
        });
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.load_direct(), 600);
}

// ---------------------------------------------------------------------
// Contention managers
// ---------------------------------------------------------------------

fn stats_after_conflict_storm(cm: ContentionManager, serial: SerialLockMode) -> StatsSnapshot {
    let rt = Arc::new(
        TmRuntime::builder()
            .contention_manager(cm)
            .serial_lock(serial)
            .build(),
    );
    let hot = Arc::new(TCell::new(0u64));
    let mut handles = vec![];
    for _ in 0..4 {
        let rt = rt.clone();
        let hot = hot.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..1500 {
                rt.atomic(|tx| {
                    let v = tx.read(&hot)?;
                    // A little work inside the window to invite conflicts.
                    std::hint::black_box(v);
                    tx.write(&hot, v + 1)
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(hot.load_direct(), 6000);
    rt.stats()
}

#[test]
fn serialize_after_policy_survives_conflict_storm() {
    let s = stats_after_conflict_storm(
        ContentionManager::SerializeAfter(3),
        SerialLockMode::ReaderWriter,
    );
    // Correctness under the policy: every increment commits exactly once,
    // whether or not the storm happened to push any transaction over the
    // threshold (with the arena-backed fast path, attempts are often quick
    // enough that nobody accumulates 3 consecutive aborts).
    assert_eq!(s.commits, 6000);
}

#[test]
fn serialize_after_policy_serializes_at_threshold() {
    // Deterministic version of the storm: force exactly 3 consecutive
    // aborted attempts from the transaction body, so the 4th attempt must
    // begin serially under SerializeAfter(3).
    let rt = TmRuntime::builder()
        .contention_manager(ContentionManager::SerializeAfter(3))
        .serial_lock(SerialLockMode::ReaderWriter)
        .build();
    let cell = TCell::new(0u64);
    let attempts = std::cell::Cell::new(0u32);
    rt.atomic(|tx| {
        attempts.set(attempts.get() + 1);
        let v = tx.read(&cell)?;
        if attempts.get() <= 3 {
            return Err(Abort::Conflict);
        }
        tx.write(&cell, v + 1)
    });
    let s = rt.stats();
    assert_eq!(attempts.get(), 4);
    assert_eq!(cell.load_direct(), 1);
    assert_eq!(s.aborts, 3, "{s:?}");
    assert_eq!(s.abort_serial, 1, "{s:?}");
    assert_eq!(s.start_serial, 0, "{s:?}");
}

#[test]
fn no_cm_never_serializes() {
    let s = stats_after_conflict_storm(ContentionManager::None, SerialLockMode::None);
    assert_eq!(s.abort_serial, 0);
    assert_eq!(s.commits, 6000);
}

#[test]
fn hourglass_clears_after_commit() {
    let rt = Arc::new(
        TmRuntime::builder()
            .contention_manager(ContentionManager::Hourglass(2))
            .serial_lock(SerialLockMode::None)
            .build(),
    );
    let hot = Arc::new(TCell::new(0u64));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let rt = rt.clone();
            let hot = hot.clone();
            s.spawn(move || {
                for _ in 0..500 {
                    rt.atomic(|tx| tx.fetch_add(&hot, 1));
                }
            });
        }
    });
    assert_eq!(hot.load_direct(), 2000);
    // The gate must be open again after the storm.
    let quick = rt.atomic(|tx| tx.read(&hot));
    assert_eq!(quick, 2000);
}

#[test]
fn backoff_policy_completes_storms() {
    let s = stats_after_conflict_storm(
        ContentionManager::Backoff { max_shift: 8 },
        SerialLockMode::None,
    );
    assert_eq!(s.commits, 6000);
    assert_eq!(s.abort_serial, 0, "backoff never serializes");
}

// ---------------------------------------------------------------------
// Algorithm-specific edges
// ---------------------------------------------------------------------

#[test]
fn write_after_write_same_cell_keeps_last() {
    for algo in all_algorithms() {
        let rt = TmRuntime::builder().algorithm(algo).build();
        let c = TCell::new(0u64);
        rt.atomic(|tx| {
            for v in 1..=10 {
                tx.write(&c, v)?;
            }
            Ok(())
        });
        assert_eq!(c.load_direct(), 10, "{algo}");
    }
}

#[test]
fn read_only_transactions_do_not_tick_the_clock() {
    // Eager/lazy read-only commits are invisible; cheap snapshot reads
    // must not invalidate each other.
    let rt = TmRuntime::builder().algorithm(Algorithm::Eager).build();
    let c = TCell::new(1u64);
    for _ in 0..100 {
        rt.atomic(|tx| tx.read(&c));
    }
    let s = rt.stats();
    assert_eq!(s.read_only_commits, 100);
    assert_eq!(s.aborts, 0);
}

#[test]
fn wide_transactions_span_many_orecs() {
    for algo in all_algorithms() {
        let rt = TmRuntime::builder().algorithm(algo).build();
        let cells: Vec<TCell<u64>> = (0..2000).map(|i| TCell::new(i)).collect();
        let sum = rt.atomic(|tx| {
            let mut s = 0u64;
            for c in &cells {
                s += tx.read(c)?;
            }
            for c in cells.iter().step_by(7) {
                tx.modify(c, |v| v + 1)?;
            }
            Ok(s)
        });
        assert_eq!(sum, (0..2000).sum::<u64>(), "{algo}");
        assert_eq!(cells[7].load_direct(), 8, "{algo}");
    }
}

#[test]
fn snapshot_is_consistent_under_concurrent_writers() {
    // Two cells always updated together; readers must never observe them
    // out of sync (opacity at the observation level).
    for algo in all_algorithms() {
        let rt = Arc::new(
            TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .build(),
        );
        let a = Arc::new(TCell::new(0u64));
        let b = Arc::new(TCell::new(0u64));
        let stop = Arc::new(AtomicU32::new(0));
        let writer = {
            let (rt, a, b, stop) = (rt.clone(), a.clone(), b.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    i += 1;
                    rt.atomic(|tx| {
                        tx.write(&*a, i)?;
                        tx.write(&*b, i * 2)
                    });
                }
            })
        };
        for _ in 0..3000 {
            let (x, y) = rt.atomic(|tx| {
                let x = tx.read(&*a)?;
                let y = tx.read(&*b)?;
                Ok((x, y))
            });
            assert_eq!(y, x * 2, "{algo}: torn snapshot ({x}, {y})");
        }
        stop.store(1, Ordering::Relaxed);
        writer.join().unwrap();
    }
}

#[test]
fn distinct_runtimes_are_isolated() {
    // Two runtimes over disjoint cells never interact (no global state
    // leakage between Arc-separated instances).
    let rt1 = TmRuntime::default_runtime();
    let rt2 = TmRuntime::builder().algorithm(Algorithm::Norec).build();
    let c1 = TCell::new(0u64);
    let c2 = TCell::new(0u64);
    rt1.atomic(|tx| tx.fetch_add(&c1, 1));
    rt2.atomic(|tx| tx.fetch_add(&c2, 10));
    assert_eq!(rt1.stats().commits, 1);
    assert_eq!(rt2.stats().commits, 1);
    assert_eq!((c1.load_direct(), c2.load_direct()), (1, 10));
}

#[test]
fn abort_error_propagates_with_question_mark() {
    // A user helper returning Result<_, Abort> composes with `?`.
    fn helper<'e, T: Transaction<'e>>(tx: &mut T, c: &'e TCell<u64>) -> Result<u64, Abort> {
        let v = tx.read(c)?;
        tx.write(c, v + 1)?;
        Ok(v)
    }
    let rt = TmRuntime::default_runtime();
    let c = TCell::new(5u64);
    let prev = rt.atomic(|tx| helper(tx, &c));
    assert_eq!(prev, 5);
    assert_eq!(c.load_direct(), 6);
}
