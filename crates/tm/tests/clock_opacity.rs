//! Opacity under skewed clock shards.
//!
//! A committer whose snapshot is stale-low — cold home shard, thread-cached
//! cross-shard view far behind a hot foreign shard — must never release its
//! write-set orecs at a timestamp at or below a live reader's snapshot:
//! such a reader could observe half the write set pre-publication and half
//! post-release, with every version check passing and (being read-only)
//! no commit-time revalidation to catch it.
//!
//! One hot thread commits continuously on a private cell, dragging the
//! global clock maximum ahead on its own shard. A cold thread periodically
//! rewrites ALL shared words in one transaction, so its cached clock view
//! is perpetually stale relative to the hot shard. Reader threads snapshot
//! every shared word read-only; each snapshot must be uniform — any mix of
//! old and new words is a serializability violation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use tm::{Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction};

fn skewed_shard_writers_stay_atomic(algo: Algorithm) {
    const WORDS: usize = 8;
    const COLD_COMMITS: u64 = 40_000;
    let rt = Arc::new(
        TmRuntime::builder()
            .algorithm(algo)
            .clock_shards(8)
            .contention_manager(ContentionManager::None)
            .serial_lock(SerialLockMode::None)
            .build(),
    );
    let cells: Arc<Vec<TCell<u64>>> = Arc::new((0..WORDS).map(|_| TCell::new(0)).collect());
    let hot_cell = Arc::new(TCell::new(0u64));
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(4));

    let hot = {
        let (rt, hot_cell, stop) = (rt.clone(), hot_cell.clone(), stop.clone());
        let start = start.clone();
        std::thread::spawn(move || {
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                rt.atomic(|tx| {
                    tx.fetch_add(&hot_cell, 1)?;
                    Ok(())
                });
            }
        })
    };

    let mut readers = vec![];
    for _ in 0..2 {
        let (rt, cells, stop) = (rt.clone(), cells.clone(), stop.clone());
        let start = start.clone();
        readers.push(std::thread::spawn(move || {
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let vals = rt.atomic_ro(|tx| {
                    let mut v = [0u64; WORDS];
                    for (i, c) in cells.iter().enumerate() {
                        v[i] = tx.read(c)?;
                        // Stretch the inter-read gap so a full writer
                        // commit (lock..release) can land inside it: the
                        // reader then never observes the locked state and
                        // only the released versions police consistency.
                        for _ in 0..2048 {
                            std::hint::spin_loop();
                        }
                    }
                    Ok(v)
                });
                assert!(
                    vals.iter().all(|&v| v == vals[0]),
                    "torn multi-word write set observed: {vals:?}"
                );
            }
        }));
    }

    // The cold committer runs here: one commit per loop against the hot
    // thread's thousands, so now_cached at its begin lags the hot shard.
    start.wait();
    for i in 1..=COLD_COMMITS {
        rt.atomic(|tx| {
            for c in cells.iter() {
                tx.write(c, i)?;
            }
            Ok(())
        });
    }
    stop.store(true, Ordering::Relaxed);
    hot.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(cells[0].load_direct(), COLD_COMMITS);
}

#[test]
fn eager_skewed_shard_writers_stay_atomic() {
    skewed_shard_writers_stay_atomic(Algorithm::Eager);
}

#[test]
fn lazy_skewed_shard_writers_stay_atomic() {
    skewed_shard_writers_stay_atomic(Algorithm::Lazy);
}
