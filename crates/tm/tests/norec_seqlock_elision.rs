//! NOrec seqlock-bump elision: a writer commit whose buffered values all
//! equal committed memory publishes nothing, so it may skip the sequence
//! bump — and must be indistinguishable from a bumping commit to every
//! observer (the equivalence these tests pin), because an elided commit
//! is exactly a read-only transaction serialized inside one even-stable
//! seqlock window.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tm::{Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction};

fn norec_rt() -> TmRuntime {
    TmRuntime::builder()
        .algorithm(Algorithm::Norec)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .build()
}

/// The deterministic shape: a read-modify-write that settles back on the
/// original value has a non-empty write set whose write-back would be a
/// no-op. The commit must elide the bump (sequence lock unchanged, stat
/// counted) while leaving memory exactly right.
#[test]
fn net_zero_write_set_elides_the_bump() {
    let rt = norec_rt();
    let c = TCell::new(7u64);
    let seq_before = rt.liveness().seq;

    rt.atomic(|tx| {
        tx.write(&c, 5)?; // real buffered write
        tx.write(&c, 7)?; // buffered overwrite back to the committed value
        tx.read(&c) // in-tx read must see the buffered 7
    });

    assert_eq!(c.load_direct(), 7);
    assert_eq!(
        rt.liveness().seq,
        seq_before,
        "elided commit must not move the sequence lock"
    );
    let s = rt.stats();
    assert_eq!(s.commits, 1);
    assert_eq!(s.seqlock_bump_elisions, 1);
    assert_eq!(
        s.clock_tick_elisions, 0,
        "the elided path returns before the commit CAS"
    );

    // Sensitivity: a genuinely new value must bump (and not count).
    rt.atomic(|tx| tx.write(&c, 8));
    assert_ne!(rt.liveness().seq, seq_before);
    let s = rt.stats();
    assert_eq!(s.seqlock_bump_elisions, 1, "bumping commit must not count as elided");
}

/// A write set that *would* have elided but whose read set went stale must
/// still abort: the elision window doubles as value-based validation.
#[test]
fn elision_never_outruns_validation() {
    let rt = norec_rt();
    let a = TCell::new(1u64);
    let b = TCell::new(10u64);
    let mut first_attempt = true;
    let seen = rt.atomic(|tx| {
        let v = tx.read(&b)?;
        if first_attempt {
            first_attempt = false;
            // A concurrent committer between our read and our commit.
            std::thread::scope(|s| {
                s.spawn(|| rt.atomic(|tx2| tx2.write(&b, 99))).join().unwrap();
            });
        }
        // Net-zero on `a`: the write set matches memory, eliding-shaped.
        tx.write(&a, 2)?;
        tx.write(&a, 1)?;
        Ok(v)
    });
    // The first attempt read b=10, went stale (b=99), and must NOT have
    // committed via the elision path; the retry sees the new value.
    assert_eq!(seen, 99, "stale read set must abort the eliding commit");
    assert_eq!(rt.stats().aborts, 1);
    assert_eq!(a.load_direct(), 1);
}

/// The torn-snapshot equivalence under concurrency: readers holding the
/// a + b == 100 invariant must never observe an intermediate state, no
/// matter how elided and bumping writer commits interleave. On top of the
/// invariant, the run must actually exercise the elision path (stat > 0).
#[test]
fn readers_never_observe_torn_snapshots_around_elided_commits() {
    let rt = Arc::new(norec_rt());
    let a = Arc::new(TCell::new(60u64));
    let b = Arc::new(TCell::new(40u64));
    let stop = Arc::new(AtomicBool::new(false));

    let mut writers = Vec::new();
    for w in 0..2u64 {
        let (rt, a, b, stop) = (rt.clone(), a.clone(), b.clone(), stop.clone());
        writers.push(std::thread::spawn(move || {
            for i in 0..400u64 {
                if i % 2 == w % 2 {
                    // Real transfer: moves value from a to b (bumping).
                    rt.atomic(|tx| {
                        let va = tx.read(&a)?;
                        let vb = tx.read(&b)?;
                        let d = 1 + (i % 3);
                        if va >= d {
                            tx.write(&a, va - d)?;
                            tx.write(&b, vb + d)?;
                        } else {
                            tx.write(&a, va + vb)?;
                            tx.write(&b, 0)?;
                        }
                        Ok(())
                    });
                } else {
                    // Net-zero churn: buffered writes settle back on the
                    // committed values — the eliding shape.
                    rt.atomic(|tx| {
                        let va = tx.read(&a)?;
                        tx.write(&a, va ^ 0xFF)?;
                        tx.write(&a, va)?;
                        Ok(())
                    });
                }
            }
            stop.store(true, Ordering::Relaxed);
        }));
    }

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (rt, a, b, stop) = (rt.clone(), a.clone(), b.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut checks = 0u64;
                // Keep checking until the writers are done, but always do a
                // minimum amount of work: on a single-core host a writer
                // can finish before this thread is first scheduled.
                while !stop.load(Ordering::Relaxed) || checks < 50 {
                    let (va, vb) = rt.atomic_ro(|tx| Ok((tx.read(&a)?, tx.read(&b)?)));
                    assert_eq!(va + vb, 100, "torn snapshot: {va} + {vb}");
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    let checks: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(checks > 0, "readers must have raced the writers");
    assert_eq!(
        rt.atomic_ro(|tx| Ok(tx.read(&a)? + tx.read(&b)?)),
        100,
        "invariant must hold at quiescence"
    );
    let s = rt.stats();
    assert!(
        s.seqlock_bump_elisions > 0,
        "the run must exercise the elision path: {s:?}"
    );
}
