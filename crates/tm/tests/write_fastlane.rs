//! Write-path fast-lane semantics, black-box:
//!
//! * **Silent-store serializability.** An elided write still participates
//!   in conflict detection as a read: a transaction that mixes a silent
//!   store with a real write must abort (and retry) if the silently-written
//!   location changes under it before commit — the classic hazard silent
//!   -store elision must not introduce.
//! * **All-silent transactions are no-ops.** They commit at their snapshot
//!   like read-only transactions and leave memory untouched even while a
//!   concurrent writer races them.
//! * **Zero allocations.** Steady-state read-write commits — with and
//!   without elided stores, including redo sets past the inline window —
//!   never touch the heap.
//!
//! White-box counterparts (orec/clock/seqlock quiescence, GV5 clock-CAS
//! elision counters) live in `tm::runtime`'s unit tests.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use tm::{Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction};

#[global_allocator]
static COUNTING_ALLOC: testkit::alloc::Counting = testkit::alloc::Counting;

fn runtime(algo: Algorithm) -> TmRuntime {
    TmRuntime::builder()
        .algorithm(algo)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .build()
}

/// A transaction writes `x`'s current value back (silent, elided to a
/// read) plus a real write to `y`, then stalls; a second thread commits a
/// new value into `x` before letting it proceed. Commit-time validation
/// must treat the elided store like a read of `x` and abort the attempt —
/// otherwise the transaction would serialize after the interferer while
/// still believing `x` held the old value.
#[test]
fn elided_silent_store_still_conflicts() {
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = Arc::new(runtime(algo));
        let x = Arc::new(TCell::new(0u64));
        let y = Arc::new(TCell::new(0u64));
        let ready = Arc::new(AtomicBool::new(false));
        let proceed = Arc::new(AtomicBool::new(false));

        let mixer = {
            let (rt, x, y) = (rt.clone(), x.clone(), y.clone());
            let (ready, proceed) = (ready.clone(), proceed.clone());
            std::thread::spawn(move || {
                let attempts = AtomicU32::new(0);
                rt.atomic(|tx| {
                    let first = attempts.fetch_add(1, Ordering::Relaxed) == 0;
                    let seen = tx.read(&*x)?;
                    tx.write(&*x, seen)?; // silent by construction
                    tx.write(&*y, seen + 100)?; // real write: not read-only
                    if first {
                        ready.store(true, Ordering::Release);
                        while !proceed.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                    }
                    Ok(())
                });
                attempts.load(Ordering::Relaxed)
            })
        };

        while !ready.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        rt.atomic(|tx| tx.write(&*x, 7)); // invalidate the elided store
        proceed.store(true, Ordering::Release);

        let attempts = mixer.join().unwrap();
        assert!(
            attempts >= 2,
            "{algo}: the stale attempt must have aborted (attempts = {attempts})"
        );
        assert!(rt.stats().aborts >= 1, "{algo}");
        assert!(rt.stats().silent_store_elisions >= 1, "{algo}");
        // The retry saw x == 7: its write-back of 7 is again silent, and y
        // carries the refreshed observation — the serializable outcome.
        assert_eq!(x.load_direct(), 7, "{algo}");
        assert_eq!(y.load_direct(), 107, "{algo}");
    }
}

/// An all-silent transaction serializes at its snapshot like a read-only
/// one: whatever it raced, memory afterwards reflects only real writers.
#[test]
fn all_silent_transactions_are_noops_under_contention() {
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = Arc::new(runtime(algo));
        let cells: Arc<Vec<TCell<u64>>> = Arc::new((0..8).map(|_| TCell::new(0)).collect());

        let toggler = {
            let (rt, cells) = (rt.clone(), cells.clone());
            std::thread::spawn(move || {
                for round in 0..500u64 {
                    rt.atomic(|tx| {
                        for c in cells.iter() {
                            tx.write(c, round % 2)?;
                        }
                        Ok(())
                    });
                }
            })
        };
        // Racing writer of constants 0 and 1: every write is silent against
        // one of the toggler's two states, real against the other.
        for round in 0..500u64 {
            rt.atomic(|tx| {
                for c in cells.iter() {
                    tx.write(c, round % 2)?;
                }
                Ok(())
            });
        }
        toggler.join().unwrap();

        let vals: Vec<u64> = cells.iter().map(|c| c.load_direct()).collect();
        assert!(
            vals.iter().all(|&v| v == vals[0]) && vals[0] <= 1,
            "{algo}: torn final state {vals:?}"
        );
        assert!(rt.stats().silent_store_elisions > 0, "{algo}");
    }
}

#[test]
fn write_commits_never_allocate() {
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo);
        // Past SMALL_WRITES so the write-map index is exercised too.
        let cells: Vec<TCell<u64>> = (0..24).map(TCell::new).collect();
        let run = |round: u64| {
            rt.atomic(|tx| {
                for (i, c) in cells.iter().enumerate() {
                    // Half the writes repeat the committed value (silent),
                    // half advance it — the steady-state SET mix.
                    let v = if i % 2 == 0 { round } else { i as u64 };
                    tx.write(c, v)?;
                }
                Ok(())
            })
        };
        for r in 0..20 {
            run(r);
        }
        let before = testkit::alloc::thread_allocs();
        for r in 0..200 {
            run(r);
        }
        let allocs = testkit::alloc::thread_allocs() - before;
        assert_eq!(
            allocs, 0,
            "{algo}: {allocs} heap allocations across 200 read-write commits"
        );
        assert!(rt.stats().silent_store_elisions > 0, "{algo}");
        assert_eq!(rt.stats().aborts, 0, "{algo}");
    }
}
